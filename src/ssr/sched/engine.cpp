#include "ssr/sched/engine.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {

bool NullReservationHook::approve(const Engine& engine, SlotId slot, JobId,
                                  int) const {
  return engine.cluster().slot(slot).state() == SlotState::Idle;
}

namespace {

void validate_sched_config(const SchedConfig& config) {
  SSR_CHECK_MSG(config.locality_wait >= 0.0, "locality wait must be >= 0");
  SSR_CHECK_MSG(config.locality_slowdown >= 1.0,
                "locality slowdown must be >= 1");
}

}  // namespace

Engine::Engine(SchedConfig config, std::uint32_t num_nodes,
               std::uint32_t slots_per_node, std::uint64_t seed)
    : config_(config),
      cluster_(num_nodes, slots_per_node),
      rng_(seed),
      hook_(std::make_unique<NullReservationHook>()) {
  validate_sched_config(config_);
}

Engine::Engine(SchedConfig config,
               const std::vector<std::vector<Resources>>& node_slots,
               std::uint64_t seed)
    : config_(config),
      cluster_(node_slots),
      rng_(seed),
      hook_(std::make_unique<NullReservationHook>()) {
  validate_sched_config(config_);
}

Engine::~Engine() = default;

JobId Engine::submit(JobSpec spec) {
  SSR_CHECK_MSG(!started_, "submit() must precede run()");
  const JobId id{static_cast<std::uint32_t>(jobs_.size())};
  auto job = std::make_unique<JobState>(JobGraph(id, std::move(spec)));
  const std::uint32_t n = job->graph.num_stages();
  job->unfinished_parents.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    job->unfinished_parents[i] =
        static_cast<std::uint32_t>(job->graph.stage(i).parents.size());
  }
  job->runtimes.resize(n);
  // Reject jobs that could never run: every stage needs at least one slot
  // whose capacity covers its demand, or the simulation would wedge.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Resources& demand = job->graph.stage(i).demand;
    bool fits_somewhere = false;
    for (std::uint32_t s = 0; s < cluster_.num_slots() && !fits_somewhere;
         ++s) {
      fits_somewhere = demand.fits_in(cluster_.slot(SlotId{s}).capacity());
    }
    SSR_CHECK_MSG(fits_somewhere,
                  "stage demand exceeds every slot capacity in the cluster");
  }

  const SimTime at = job->graph.submit_time();
  jobs_.push_back(std::move(job));
  sim_.schedule_at(at, [this, id] { arrive(id); });
  return id;
}

void Engine::set_reservation_hook(std::unique_ptr<ReservationHook> hook) {
  SSR_CHECK_MSG(!started_, "hook must be installed before run()");
  SSR_CHECK_MSG(hook != nullptr, "hook must not be null");
  hook_ = std::move(hook);
}

void Engine::add_observer(EngineObserver* observer) {
  SSR_CHECK_MSG(observer != nullptr, "observer must not be null");
  observers_.push_back(observer);
}

void Engine::run() {
  SSR_CHECK_MSG(!started_, "run() may be called only once");
  started_ = true;
  sim_.run();
  cluster_.settle(sim_.now());
  for (const auto& job : jobs_) {
    SSR_CHECK_MSG(job->done(), "simulation wedged: "
                                   << job->graph.name() << " ("
                                   << job->graph.id() << ") has "
                                   << job->finished_stages << "/"
                                   << job->graph.num_stages()
                                   << " stages finished");
  }
  for (EngineObserver* o : observers_) o->on_run_complete(*this);
}

const JobGraph& Engine::graph(JobId job) const { return state(job).graph; }

bool Engine::job_finished(JobId job) const {
  return state(job).finish_time >= 0.0;
}

SimTime Engine::job_finish_time(JobId job) const {
  SSR_CHECK_MSG(job_finished(job), "job has not finished");
  return state(job).finish_time;
}

SimDuration Engine::jct(JobId job) const {
  return job_finish_time(job) - graph(job).submit_time();
}

std::uint32_t Engine::running_tasks_of(JobId job) const {
  return state(job).running_tasks;
}

StageRuntime* Engine::stage_runtime(StageId stage) {
  auto& job = state(stage.job);
  if (stage.index >= job.runtimes.size()) return nullptr;
  return job.runtimes[stage.index].get();
}

const StageRuntime* Engine::stage_runtime(StageId stage) const {
  const auto& job = state(stage.job);
  if (stage.index >= job.runtimes.size()) return nullptr;
  return job.runtimes[stage.index].get();
}

// --- Job lifecycle ----------------------------------------------------------

void Engine::arrive(JobId job) {
  for (EngineObserver* o : observers_) o->on_job_submitted(*this, job);
  for (std::uint32_t root : state(job).graph.roots()) {
    submit_stage(job, root);
  }
}

std::vector<double> Engine::draw_durations(const StageSpec& spec) {
  if (spec.explicit_durations) return *spec.explicit_durations;
  std::vector<double> out(spec.num_tasks);
  for (double& d : out) d = spec.duration->sample(rng_);
  return out;
}

void Engine::submit_stage(JobId job, std::uint32_t stage_index) {
  JobState& js = state(job);
  SSR_CHECK_MSG(js.runtimes[stage_index] == nullptr,
                "stage submitted more than once");
  const StageId sid = js.graph.stage_id(stage_index);
  const StageSpec& spec = js.graph.stage(stage_index);

  js.runtimes[stage_index] = std::make_unique<StageRuntime>(
      sid, spec, sim_.now(), draw_durations(spec));
  StageRuntime& stage = *js.runtimes[stage_index];

  // Data locality: downstream tasks prefer the slots that produced the
  // parents' outputs.
  std::unordered_set<SlotId> preferred;
  for (std::uint32_t p : spec.parents) {
    auto it = stage_output_slots_.find(js.graph.stage_id(p));
    if (it != stage_output_slots_.end()) {
      preferred.insert(it->second.begin(), it->second.end());
    }
  }
  stage.set_preferred_slots(std::move(preferred));

  active_stages_.push_back(sid);
  hook_->on_stage_submitted(*this, sid);
  for (EngineObserver* o : observers_) o->on_stage_submitted(*this, sid);

  place_stage_tasks(stage);
}

void Engine::on_stage_complete(StageRuntime& stage) {
  JobState& js = state(stage.id().job);
  ++js.finished_stages;
  for (EngineObserver* o : observers_) o->on_stage_finished(*this, stage.id());

  for (std::uint32_t child : js.graph.children(stage.id().index)) {
    SSR_CHECK(js.unfinished_parents[child] > 0);
    if (--js.unfinished_parents[child] == 0) {
      submit_stage(stage.id().job, child);
    }
  }
  if (js.done()) finish_job(stage.id().job);
}

void Engine::finish_job(JobId job) {
  JobState& js = state(job);
  js.finish_time = sim_.now();
  hook_->on_job_finished(*this, job);  // releases the job's reservations
  cluster_.forget_job_outputs(job);
  std::erase_if(stage_output_slots_,
                [job](const auto& kv) { return kv.first.job == job; });
  for (EngineObserver* o : observers_) o->on_job_finished(*this, job);
}

// --- Offers -----------------------------------------------------------------

bool Engine::stage_precedes(const StageRuntime& a, const StageRuntime& b) const {
  const JobState& ja = state(a.id().job);
  const JobState& jb = state(b.id().job);
  if (config_.policy == SchedulingPolicy::Fair) {
    const double sa =
        static_cast<double>(ja.running_tasks) / ja.graph.spec().fair_weight;
    const double sb =
        static_cast<double>(jb.running_tasks) / jb.graph.spec().fair_weight;
    if (sa != sb) return sa < sb;
  } else {
    if (ja.graph.priority() != jb.graph.priority()) {
      return ja.graph.priority() > jb.graph.priority();
    }
  }
  if (ja.graph.submit_time() != jb.graph.submit_time()) {
    return ja.graph.submit_time() < jb.graph.submit_time();
  }
  if (a.id().job != b.id().job) return a.id().job < b.id().job;
  return a.id().index < b.id().index;
}

bool Engine::stage_accepts_slot(const StageRuntime& stage, SlotId slot) const {
  const JobId job = stage.id().job;
  // Resource fit (Sec. III-C): the slot's capacity must cover the stage's
  // per-task demand.  Homogeneous setups pass trivially ({1,1} in {1,1}).
  if (!stage.spec().demand.fits_in(cluster_.slot(slot).capacity())) {
    return false;
  }
  if (!hook_->approve(*this, slot, job, state(job).graph.priority())) {
    return false;
  }
  if (stage.is_preferred(slot)) return true;
  // Non-preferred slots — including the job's own *pre-reserved* ones, which
  // hold no parent data — are subject to delay scheduling: a guaranteed
  // remote slot is an option to exercise once the locality wait expires, not
  // a reason to pay the remote penalty early.
  return stage.accepts_any_slot(sim_.now(), config_.locality_wait);
}

void Engine::offer_slot(SlotId slot) {
  const SlotState st = cluster_.slot(slot).state();
  if (st == SlotState::Busy) return;
  // Single linear pass: find the policy-first stage that accepts this slot.
  // (Sorting all pending stages per offer would dominate large overloaded
  // simulations; acceptance checks are cheap hash lookups.)
  StageRuntime* best = nullptr;
  for (StageId sid : active_stages_) {
    StageRuntime* stage = stage_runtime(sid);
    if (stage == nullptr || stage->all_placed()) continue;
    if (best != nullptr && !stage_precedes(*stage, *best)) continue;
    if (stage_accepts_slot(*stage, slot)) {
      best = stage;
    } else {
      arm_locality_retry(*stage);
    }
  }
  if (best != nullptr) {
    const std::uint32_t index = *best->peek_pending();
    best->take_pending(index);
    start_attempt(*best, best->mutable_original(index), slot);
  }
}

void Engine::place_stage_tasks(StageRuntime& stage) {
  if (stage.all_placed()) return;
  const JobId job = stage.id().job;

  // Candidate slots in preference order: (1) slots reserved for this job —
  // downstream computations reclaim their reservations first; (2) idle slots
  // holding parent outputs; (3) any other idle slot; (4) lower-priority
  // reservations (override).  Duplicates are harmless: a consumed slot fails
  // the availability re-check.
  std::vector<SlotId> candidates;
  for (SlotId s : cluster_.reserved_idle_slots()) {
    if (cluster_.slot(s).reservation()->job == job) candidates.push_back(s);
  }
  for (SlotId s : cluster_.idle_slots()) {
    if (stage.is_preferred(s)) candidates.push_back(s);
  }
  for (SlotId s : cluster_.idle_slots()) {
    if (!stage.is_preferred(s)) candidates.push_back(s);
  }
  for (SlotId s : cluster_.reserved_idle_slots()) {
    if (cluster_.slot(s).reservation()->job != job) candidates.push_back(s);
  }

  for (SlotId slot : candidates) {
    if (stage.all_placed()) break;
    if (cluster_.slot(slot).state() == SlotState::Busy) continue;
    if (!stage_accepts_slot(stage, slot)) continue;
    const std::uint32_t index = *stage.peek_pending();
    stage.take_pending(index);
    start_attempt(stage, stage.mutable_original(index), slot);
  }
  arm_locality_retry(stage);
}

void Engine::arm_locality_retry(StageRuntime& stage) {
  if (stage.all_placed() || stage.retry_timer_armed()) return;
  if (stage.preferred_slots().empty()) return;
  const SimTime relax = stage.locality_relax_time(config_.locality_wait);
  if (relax <= sim_.now()) return;  // already accepts any slot
  stage.set_retry_timer_armed(true);
  sim_.schedule_at(relax, [this, sid = stage.id()] {
    StageRuntime* st = stage_runtime(sid);
    if (st == nullptr) return;
    st->set_retry_timer_armed(false);
    if (!st->all_placed()) place_stage_tasks(*st);
  });
}

// --- Task execution ----------------------------------------------------------

bool Engine::is_local(const StageRuntime& stage, SlotId slot) const {
  if (stage.preferred_slots().empty()) return true;
  return stage.is_preferred(slot);
}

void Engine::start_attempt(StageRuntime& stage, TaskAttempt& attempt,
                           SlotId slot) {
  JobState& js = state(stage.id().job);
  // Straggler copies always run warm: the reserved slot executed this very
  // phase moments ago (Sec. IV-C — no JVM warm-up, data already local).
  const bool local = attempt.id.attempt > 0 || is_local(stage, slot);
  const double runtime =
      attempt.base_duration * (local ? 1.0 : config_.locality_slowdown) +
      config_.task_overhead;

  cluster_.start_task(slot, attempt.id, sim_.now());
  stage.mark_running(attempt, slot, sim_.now(), local);
  ++js.running_tasks;

  // Passive observers see the event stream in cluster-transition order, so
  // they are notified before the hook, whose handler may itself transition
  // slots (reserve, release) and emit further observer events.
  for (EngineObserver* o : observers_) o->on_task_started(*this, attempt.id, slot);
  hook_->on_task_started(*this, attempt.id, slot);

  sim_.schedule_after(runtime, [this, sid = stage.id(), tid = attempt.id] {
    handle_completion(sid, tid);
  });

  // Copies never change the pending queue; only the placement of the last
  // original flips the stage to fully-placed.
  if (attempt.id.attempt == 0 && stage.all_placed()) {
    std::erase(active_stages_, stage.id());
    hook_->on_stage_fully_placed(*this, stage.id());
  }
}

TaskFinishInfo Engine::make_finish_info(const StageRuntime& stage,
                                        const TaskAttempt& attempt) const {
  TaskFinishInfo info;
  info.task = attempt.id;
  info.slot = attempt.slot;
  info.stage_parallelism = stage.parallelism();
  info.stage_finished = stage.finished_count();
  info.duration = attempt.finish_time - attempt.start_time;
  return info;
}

void Engine::handle_completion(StageId stage_id, TaskId task) {
  StageRuntime* stage = stage_runtime(stage_id);
  SSR_CHECK_MSG(stage != nullptr, "completion for unknown stage");
  TaskAttempt* attempt = stage->find_attempt(task);
  SSR_CHECK_MSG(attempt != nullptr, "completion for unknown attempt");
  if (attempt->state != AttemptState::Running) {
    return;  // lost the copy race and was killed; stale event
  }

  JobState& js = state(stage_id.job);
  stage->mark_finished(*attempt, sim_.now());
  --js.running_tasks;
  cluster_.finish_task(attempt->slot, sim_.now());
  stage_output_slots_[stage_id].push_back(attempt->slot);
  // Observers must see the finish before the twin kill and before the hook
  // (which may immediately reserve the freed slot) — same ordering rule as
  // in start_attempt.
  for (EngineObserver* o : observers_) {
    o->on_task_finished(*this, task, attempt->slot);
  }

  // First finisher wins the race (Sec. IV-C): kill the twin attempt.
  TaskAttempt* twin = nullptr;
  if (task.attempt == 0) {
    twin = stage->running_copy(task.index);
  } else {
    TaskAttempt& original = stage->mutable_original(task.index);
    if (original.state == AttemptState::Running) twin = &original;
  }
  if (twin != nullptr) kill_attempt(*stage, *twin);

  hook_->on_task_finished(*this, make_finish_info(*stage, *attempt));

  if (stage->complete()) on_stage_complete(*stage);

  if (cluster_.slot(attempt->slot).state() == SlotState::Idle) {
    offer_slot(attempt->slot);
  }
}

void Engine::kill_attempt(StageRuntime& stage, TaskAttempt& attempt) {
  JobState& js = state(stage.id().job);
  cluster_.kill_task(attempt.slot, sim_.now());
  stage.mark_killed(attempt, sim_.now());
  --js.running_tasks;
  for (EngineObserver* o : observers_) {
    o->on_task_killed(*this, attempt.id, attempt.slot);
  }
  hook_->on_task_killed(*this, make_finish_info(stage, attempt));
  if (cluster_.slot(attempt.slot).state() == SlotState::Idle) {
    offer_slot(attempt.slot);
  }
}

// --- Reservation operations ---------------------------------------------------

void Engine::reserve_slot(SlotId slot, Reservation reservation) {
  const SimTime deadline = reservation.deadline;
  reservation.token = cluster_.reserve(slot, reservation, sim_.now());
  const std::uint64_t token = reservation.token;
  for (EngineObserver* o : observers_) {
    o->on_slot_reserved(*this, slot, reservation);
  }
  if (deadline < kTimeInfinity) {
    sim_.schedule_at(deadline, [this, slot, token] {
      if (cluster_.release_if_current(slot, token, sim_.now())) {
        for (EngineObserver* o : observers_) {
          o->on_reservation_released(*this, slot,
                                     ReservationEndReason::Expired);
        }
        hook_->on_slot_idle(*this, slot);
        if (cluster_.slot(slot).state() == SlotState::Idle) offer_slot(slot);
      }
    });
  }
  // A freshly reserved slot can still serve strictly higher-priority work.
  offer_slot(slot);
}

void Engine::release_reservation(SlotId slot) {
  cluster_.release_reservation(slot, sim_.now());
  for (EngineObserver* o : observers_) {
    o->on_reservation_released(*this, slot, ReservationEndReason::Released);
  }
  hook_->on_slot_idle(*this, slot);
  if (cluster_.slot(slot).state() == SlotState::Idle) offer_slot(slot);
}

bool Engine::launch_copy(StageId stage_id, std::uint32_t task_index,
                         SlotId slot) {
  StageRuntime* stage = stage_runtime(stage_id);
  if (stage == nullptr) return false;
  const Slot& s = cluster_.slot(slot);
  if (s.state() != SlotState::ReservedIdle ||
      s.reservation()->job != stage_id.job) {
    return false;
  }
  if (stage->task_done(task_index)) return false;
  if (stage->original(task_index).state != AttemptState::Running) return false;
  if (stage->has_live_copy(task_index)) return false;
  if (!stage->spec().demand.fits_in(s.capacity())) return false;

  const double duration = stage->spec().duration->sample(rng_);
  TaskAttempt& copy = stage->add_copy(task_index, duration);
  start_attempt(*stage, copy, slot);
  return true;
}

}  // namespace ssr
