// Per-phase task lifecycle — the analog of Spark's TaskSetManager.
//
// A StageRuntime is created the moment a stage's barrier clears (all parents
// finished) and owns the stage's task attempts: the originals (attempt 0) and
// any straggler-mitigation copies (attempt >= 1).  It also implements delay
// scheduling: the task set prefers slots holding its parents' outputs and
// only accepts arbitrary slots after `locality_wait` has elapsed.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/dag/job.h"

namespace ssr {

enum class AttemptState { Pending, Running, Finished, Killed };

/// One task attempt (original or copy).
struct TaskAttempt {
  TaskId id;
  AttemptState state = AttemptState::Pending;
  double base_duration = 0.0;  ///< Duration before any locality penalty.
  SimTime start_time = -1.0;
  SimTime finish_time = -1.0;
  SlotId slot{};       ///< Valid while Running / after Finished.
  bool local = false;  ///< Whether the attempt ran with data locality.
  /// Bumped each time the attempt is resurrected after a failure; completion
  /// events carry the epoch they were scheduled under, so an event from a
  /// pre-failure run of the attempt cannot complete its re-run.
  std::uint32_t epoch = 0;
};

/// Runtime state of one submitted stage.
class StageRuntime {
 public:
  StageRuntime(StageId id, const StageSpec& spec, SimTime submitted_at,
               std::vector<double> durations);

  StageId id() const { return id_; }
  const StageSpec& spec() const { return *spec_; }
  SimTime submitted_at() const { return submitted_at_; }

  std::uint32_t parallelism() const { return spec_->num_tasks; }
  std::uint32_t finished_count() const { return finished_; }
  std::uint32_t running_originals() const { return running_originals_; }
  std::uint32_t pending_count() const {
    return static_cast<std::uint32_t>(pending_.size());
  }
  bool all_placed() const { return pending_.empty(); }
  bool complete() const { return finished_ == spec_->num_tasks; }

  /// Fraction of original tasks finished — drives the pre-reservation
  /// threshold test (finishedTaskFraction > R in Algorithm 1).
  double finished_fraction() const {
    return static_cast<double>(finished_) /
           static_cast<double>(spec_->num_tasks);
  }

  /// Duration of the first original task to finish; the paper's online
  /// estimate of the Pareto scale parameter t_m.  nullopt until one finishes.
  std::optional<double> first_finish_duration() const {
    return first_finish_duration_;
  }

  // --- Pending queue ------------------------------------------------------

  /// Index of the next unplaced original task; does not remove it.
  std::optional<std::uint32_t> peek_pending() const;

  /// Remove a specific task index from the pending queue (it is starting).
  void take_pending(std::uint32_t task_index);

  const TaskAttempt& original(std::uint32_t task_index) const {
    return originals_.at(task_index);
  }
  TaskAttempt& mutable_original(std::uint32_t task_index) {
    return originals_.at(task_index);
  }

  /// Indices of original tasks currently Running (for straggler copies).
  std::vector<std::uint32_t> running_task_indices() const;

  // --- Copies (straggler mitigation) --------------------------------------

  /// Register a new copy attempt for `task_index`; returns its attempt id.
  TaskAttempt& add_copy(std::uint32_t task_index, double base_duration);

  bool has_live_copy(std::uint32_t task_index) const;

  /// The copy of `task_index` that is currently Running, if any.
  TaskAttempt* running_copy(std::uint32_t task_index);

  /// Locate any attempt (original or copy) by id; nullptr if unknown.
  TaskAttempt* find_attempt(TaskId id);

  /// The attempt whose completion finished `task_index` (original first,
  /// then copies); nullptr while the task is not done.  Failure handling
  /// asks this to learn which slot holds the task's output.
  const TaskAttempt* finished_attempt(std::uint32_t task_index) const;

  // --- Attempt state transitions (engine-driven) ---------------------------

  void mark_running(TaskAttempt& attempt, SlotId slot, SimTime now,
                    bool local);
  /// Marks the attempt finished; updates finished count / t_m estimate when
  /// the attempt is the first completion of its task index.
  void mark_finished(TaskAttempt& attempt, SimTime now);
  void mark_killed(TaskAttempt& attempt, SimTime now);

  /// Failure recovery: put the logical task back in the pending queue by
  /// resetting its original attempt (which must be Finished or Killed) to a
  /// fresh Pending with a bumped epoch.  If the task was done, it no longer
  /// is; the stage re-opens accordingly.  The base duration is kept, so the
  /// re-run consumes no randomness and a failure cannot perturb the RNG
  /// stream of unrelated draws.
  void resurrect(std::uint32_t task_index);

  /// True if the logical task (any attempt) has already finished.
  bool task_done(std::uint32_t task_index) const {
    return done_.contains(task_index);
  }

  // --- Delay scheduling ----------------------------------------------------

  /// Slots that hold a parent stage's output (preferred, data-local).
  const std::unordered_set<SlotId>& preferred_slots() const {
    return preferred_;
  }
  void set_preferred_slots(std::unordered_set<SlotId> preferred);
  bool is_preferred(SlotId slot) const { return preferred_.contains(slot); }

  /// The preferred slots in ascending id order.  The hot path walks this
  /// instead of filtering the whole idle set, so candidate enumeration is
  /// proportional to the stage's locality footprint; the sorted order keeps
  /// it bit-identical with an id-ordered idle-set scan.
  const std::vector<SlotId>& preferred_slots_sorted() const {
    return preferred_sorted_;
  }

  /// Whether the task set currently accepts slots without locality.  True
  /// when it has no locality preference at all, or when `locality_wait` has
  /// elapsed since submission / the last local launch (Spark semantics).
  bool accepts_any_slot(SimTime now, SimDuration locality_wait) const;

  /// Time at which accepts_any_slot() flips to true (for retry timers).
  SimTime locality_relax_time(SimDuration locality_wait) const;

  void note_local_launch(SimTime now) { last_local_launch_ = now; }

  /// Retry-timer bookkeeping so the engine schedules one timer at a time.
  bool retry_timer_armed() const { return retry_timer_armed_; }
  void set_retry_timer_armed(bool armed) { retry_timer_armed_ = armed; }

 private:
  StageId id_;
  const StageSpec* spec_;
  SimTime submitted_at_;

  std::vector<TaskAttempt> originals_;
  std::deque<TaskAttempt> copies_;  // deque: stable references on growth
  std::deque<std::uint32_t> pending_;
  std::unordered_set<std::uint32_t> done_;

  std::uint32_t finished_ = 0;
  std::uint32_t running_originals_ = 0;
  std::optional<double> first_finish_duration_;

  std::unordered_set<SlotId> preferred_;
  std::vector<SlotId> preferred_sorted_;
  SimTime last_local_launch_;
  bool retry_timer_armed_ = false;
};

}  // namespace ssr
