#include "ssr/sched/virtual_cluster.h"

#include <algorithm>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/sim/cluster.h"

namespace ssr {

VirtualClusterManager::VirtualClusterManager(Engine& engine)
    : engine_(engine) {
  engine_.add_observer(this);
}

void VirtualClusterManager::add_cluster(VirtualClusterSpec spec) {
  SSR_CHECK_MSG(!spec.name.empty(), "virtual cluster needs a name");
  SSR_CHECK_MSG(!by_name_.contains(spec.name),
                "duplicate virtual cluster: " << spec.name);
  SSR_CHECK_MSG(spec.max_slots >= 1, "virtual cluster " << spec.name
                                                        << ": max share must "
                                                           "be >= 1 slot");
  SSR_CHECK_MSG(spec.max_slots >= spec.min_slots,
                "virtual cluster " << spec.name
                                   << ": max share below guaranteed minimum");
  by_name_.emplace(spec.name,
                   static_cast<std::uint32_t>(tenants_.size()));
  auto t = std::make_unique<Tenant>();
  t->spec = std::move(spec);
  tenants_.push_back(std::move(t));
  check_share_conservation();
}

void VirtualClusterManager::resize(const std::string& name,
                                   std::uint32_t new_min,
                                   std::uint32_t new_max) {
  Tenant& t = tenant(name);
  SSR_CHECK_MSG(new_max >= 1 && new_max >= new_min,
                "virtual cluster " << name << ": invalid share bounds");
  for (const QueuedJob& q : t.queue) {
    // A queued head that can never fit would wedge the FIFO queue forever;
    // shrinking keeps the liveness invariant by refusing to strand work.
    SSR_CHECK_MSG(slot_demand(q.spec) <= new_max,
                  "virtual cluster " << name
                                     << ": resize below a queued job's demand");
  }
  t.spec.min_slots = new_min;
  t.spec.max_slots = new_max;
  check_share_conservation();
  pump(t);
}

void VirtualClusterManager::transfer(const std::string& from,
                                     const std::string& to,
                                     std::uint32_t slots) {
  SSR_CHECK_MSG(from != to, "transfer needs two distinct virtual clusters");
  Tenant& src = tenant(from);
  Tenant& dst = tenant(to);
  SSR_CHECK_MSG(src.spec.min_slots >= slots && src.spec.max_slots > slots,
                "virtual cluster " << from << ": cannot give away " << slots
                                   << " slots");
  for (const QueuedJob& q : src.queue) {
    SSR_CHECK_MSG(slot_demand(q.spec) <= src.spec.max_slots - slots,
                  "virtual cluster "
                      << from << ": transfer below a queued job's demand");
  }
  src.spec.min_slots -= slots;
  src.spec.max_slots -= slots;
  dst.spec.min_slots += slots;
  dst.spec.max_slots += slots;
  check_share_conservation();
  pump(dst);
}

std::uint32_t VirtualClusterManager::slot_demand(const JobSpec& spec) const {
  std::uint32_t widest = 0;
  for (const StageSpec& stage : spec.stages) {
    widest = std::max(widest, stage.num_tasks);
  }
  return std::min(widest, engine_.cluster().num_slots());
}

AdmissionOutcome VirtualClusterManager::submit_job(const std::string& name,
                                                   JobSpec spec) {
  Tenant& t = tenant(name);
  t.stats.submitted += 1;
  const std::uint32_t demand = slot_demand(spec);
  if (demand > t.spec.max_slots) {
    // Can never fit the share, so queueing it would wedge the FIFO head.
    t.stats.rejected += 1;
    return AdmissionOutcome::Rejected;
  }
  // A fitting job never overtakes an earlier queued one: admission within a
  // tenant is strictly FIFO, so a non-empty queue sends everything to the
  // back regardless of fit.
  if (t.queue.empty() && fits(t, demand)) {
    admit(t, std::move(spec), engine_.now(), /*from_queue=*/false);
    return AdmissionOutcome::Admitted;
  }
  if (!t.spec.queue_when_full) {
    t.stats.rejected += 1;
    return AdmissionOutcome::Rejected;
  }
  t.stats.queued_total += 1;
  t.queue.push_back(QueuedJob{std::move(spec), engine_.now()});
  return AdmissionOutcome::Queued;
}

void VirtualClusterManager::admit(Tenant& t, JobSpec spec,
                                  SimTime requested_at, bool from_queue) {
  const SimTime now = engine_.now();
  const std::uint32_t demand = slot_demand(spec);
  spec.submit_time = now;  // admission instant, not request instant
  const JobId id = engine_.submit(std::move(spec));

  t.stats.admitted += 1;
  t.stats.jobs_in_flight += 1;
  t.stats.demand_in_flight += demand;
  t.stats.peak_demand_in_flight =
      std::max(t.stats.peak_demand_in_flight, t.stats.demand_in_flight);
  const double delay = now - requested_at;
  t.stats.total_queue_delay += delay;
  t.stats.max_queue_delay = std::max(t.stats.max_queue_delay, delay);
  // The share bound is the invariant the whole layer exists for; check it on
  // every admission rather than trusting fits()'s arithmetic.
  SSR_CHECK_MSG(t.stats.demand_in_flight <= t.spec.max_slots,
                "virtual cluster " << t.spec.name
                                   << ": admission overran the max share");

  job_tenant_.emplace(id.v, by_name_.at(t.spec.name));
  admission_log_.push_back(AdmissionRecord{
      t.spec.name, id, demand, requested_at, now, from_queue,
      t.stats.demand_in_flight, t.spec.max_slots});
}

void VirtualClusterManager::pump(Tenant& t) {
  while (!t.queue.empty() && fits(t, slot_demand(t.queue.front().spec))) {
    QueuedJob next = std::move(t.queue.front());
    t.queue.pop_front();
    admit(t, std::move(next.spec), next.requested_at, /*from_queue=*/true);
  }
}

void VirtualClusterManager::on_job_finished(const Engine& engine, JobId job) {
  const auto it = job_tenant_.find(job.v);
  if (it == job_tenant_.end()) return;  // unmetered job (mixed-mode run)
  Tenant& t = *tenants_.at(it->second);
  const std::uint32_t demand =
      slot_demand(engine.graph(job).spec());
  SSR_CHECK_MSG(t.stats.jobs_in_flight >= 1 &&
                    t.stats.demand_in_flight >= demand,
                "virtual cluster " << t.spec.name
                                   << ": completion under-run (double "
                                      "on_job_finished?)");
  t.stats.jobs_in_flight -= 1;
  t.stats.demand_in_flight -= demand;
  t.stats.completed += 1;
  t.stats.total_jct += engine.jct(job);
  completion_log_.push_back(
      CompletionRecord{t.spec.name, job, demand, engine.now()});
  pump(t);
}

void VirtualClusterManager::on_run_complete(const Engine&) {
  for (const auto& t : tenants_) {
    SSR_CHECK_MSG(t->queue.empty(),
                  "virtual cluster "
                      << t->spec.name << ": " << t->queue.size()
                      << " queued jobs were never admitted (liveness "
                         "violation — a queued head stopped fitting)");
  }
}

std::vector<std::string> VirtualClusterManager::tenant_names() const {
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& t : tenants_) names.push_back(t->spec.name);
  return names;
}

const VirtualClusterSpec& VirtualClusterManager::spec(
    const std::string& name) const {
  return tenant(name).spec;
}

const TenantStats& VirtualClusterManager::stats(
    const std::string& name) const {
  return tenant(name).stats;
}

std::uint32_t VirtualClusterManager::queued_jobs(
    const std::string& name) const {
  return static_cast<std::uint32_t>(tenant(name).queue.size());
}

bool VirtualClusterManager::all_queues_empty() const {
  for (const auto& t : tenants_) {
    if (!t->queue.empty()) return false;
  }
  return true;
}

const std::string* VirtualClusterManager::tenant_of(JobId job) const {
  const auto it = job_tenant_.find(job.v);
  if (it == job_tenant_.end()) return nullptr;
  return &tenants_.at(it->second)->spec.name;
}

VirtualClusterManager::Tenant& VirtualClusterManager::tenant(
    const std::string& name) {
  const auto it = by_name_.find(name);
  SSR_CHECK_MSG(it != by_name_.end(), "unknown virtual cluster: " << name);
  return *tenants_.at(it->second);
}

const VirtualClusterManager::Tenant& VirtualClusterManager::tenant(
    const std::string& name) const {
  const auto it = by_name_.find(name);
  SSR_CHECK_MSG(it != by_name_.end(), "unknown virtual cluster: " << name);
  return *tenants_.at(it->second);
}

void VirtualClusterManager::check_share_conservation() const {
  std::uint64_t guaranteed = 0;
  for (const auto& t : tenants_) guaranteed += t->spec.min_slots;
  SSR_CHECK_MSG(guaranteed <= engine_.cluster().num_slots(),
                "guaranteed tenant minima (" << guaranteed
                                             << " slots) exceed the physical "
                                                "cluster ("
                                             << engine_.cluster().num_slots()
                                             << " slots)");
}

}  // namespace ssr
