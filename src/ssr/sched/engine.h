// The scheduling engine: Spark's DAGScheduler + TaskSchedulerImpl over the
// discrete-event cluster.
//
// The engine is an *open system*: jobs may be submitted at any time while
// the simulation steps forward (submit + advance_to + drain), which is what
// the long-lived service mode and the multi-tenant virtual-cluster layer
// build on.  The classic closed-batch experiment — submit everything, then
// run() — is a thin wrapper over the same stepping core, and produces
// bit-identical event streams (see EventBand for the tie-break contract the
// equivalence rests on).
//
// Responsibilities:
//  * job lifecycle: arrival events, barrier tracking, stage submission in
//    topological order, job completion;
//  * resourceOffers: when a slot frees (or a stage is submitted) the engine
//    matches pending task sets to available slots under the configured
//    policy (priority or fair), delay scheduling, and the reservation hook's
//    ApprovalLogic;
//  * task execution: durations with locality penalties, completion events,
//    straggler-copy races (first finisher wins, the loser is killed).
//
// The speculative-slot-reservation core plugs in through ReservationHook;
// with the default NullReservationHook the engine is a plain work-conserving
// cluster scheduler — exactly the baseline the paper's Sec. II measures.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ssr/common/arena.h"
#include "ssr/common/ids.h"
#include "ssr/common/rng.h"
#include "ssr/common/time.h"
#include "ssr/dag/job.h"
#include "ssr/sched/stage_runtime.h"
#include "ssr/sched/types.h"
#include "ssr/sim/cluster.h"
#include "ssr/sim/failure_injector.h"
#include "ssr/sim/simulator.h"

namespace ssr {

/// Baseline hook: no reservations ever; only unreserved idle slots are
/// approved.  Gives the naive work-conserving scheduler of Sec. II.
class NullReservationHook : public ReservationHook {
 public:
  void on_task_finished(Engine&, const TaskFinishInfo&) override {}
  void on_task_killed(Engine&, const TaskFinishInfo&) override {}
  void on_slot_idle(Engine&, SlotId) override {}
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override;
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::NeverApprove;
  }
  void on_stage_submitted(Engine&, StageId) override {}
  void on_stage_fully_placed(Engine&, StageId) override {}
  void on_task_started(Engine&, TaskId, SlotId) override {}
  void on_job_finished(Engine&, JobId) override {}
};

/// The engine doubles as the FailureSink a FailureInjector drives: failure
/// events arrive through the ordinary event queue and are handled inline
/// (kill + re-queue running tasks, break reservations, invalidate resident
/// outputs) so a failure run stays deterministic.
class Engine : public FailureSink {
 public:
  Engine(SchedConfig config, std::uint32_t num_nodes,
         std::uint32_t slots_per_node, std::uint64_t seed);

  /// Heterogeneous cluster (Sec. III-C): per-node slot capacities.
  Engine(SchedConfig config,
         const std::vector<std::vector<Resources>>& node_slots,
         std::uint64_t seed);

  /// Dispatching ctor used by the experiment harness: an empty `node_slots`
  /// builds the homogeneous cluster (exactly the first ctor — goldens depend
  /// on that equivalence), a non-empty one the heterogeneous cluster and
  /// must then have `num_nodes` entries.
  Engine(SchedConfig config, std::uint32_t num_nodes,
         std::uint32_t slots_per_node,
         const std::vector<std::vector<Resources>>& node_slots,
         std::uint64_t seed);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Setup ---------------------------------------------------------------

  /// Register a job; its arrival fires at spec.submit_time, which must not
  /// be in the simulated past.  May be called at any point before drain():
  /// the closed harness submits everything up front, the open-system
  /// stepping API (advance_to) submits while the simulation runs.  Arrival
  /// events carry EventBand::kArrival, so a job submitted mid-run fires in
  /// exactly the same-instant order a closed run would have given it.
  JobId submit(JobSpec spec);

  /// Open-system submission: `at` overrides spec.submit_time.  Sugar for the
  /// submit_job(tenant, job, t) surface; tenancy itself lives in
  /// VirtualClusterManager, which calls back into submit() on admission.
  JobId submit_job(JobSpec spec, SimTime at);

  /// Install the reservation policy (the SSR core).  Must be called before
  /// the simulation starts stepping; defaults to NullReservationHook.
  void set_reservation_hook(std::unique_ptr<ReservationHook> hook);

  /// Register a metrics observer (non-owning; must outlive the engine's
  /// last step).
  void add_observer(EngineObserver* observer);

  // --- Open-system stepping ------------------------------------------------

  /// Process every event with time <= t; afterwards now() == t exactly,
  /// whether or not events fired (simulated time passes in an open system).
  /// Events tied at the boundary all fire, in band/insertion order; events
  /// strictly past t are never popped (bounded advance).  Interleave with
  /// submit() to model continuous job traffic.
  void advance_to(SimTime t);

  /// Run the simulation to quiescence and finalize the run: settles slot
  /// accounting, verifies every submitted job completed (throws CheckError
  /// if the system wedges — an invariant violation in a scheduling policy),
  /// and fires on_run_complete.  Terminal: no submit or advance after.
  void drain();

  /// Closed-batch wrapper over the stepping core: exactly drain().  Kept as
  /// the one-shot API every batch experiment uses.
  void run();

  /// Current simulated time (the stepping clock).
  SimTime now() const { return sim_.now(); }

  /// True once every job submitted so far has finished.
  bool all_jobs_finished() const;

  // --- Introspection -------------------------------------------------------

  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }
  Cluster& cluster() { return cluster_; }
  const Cluster& cluster() const { return cluster_; }
  const SchedConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

  std::uint32_t num_jobs() const {
    return static_cast<std::uint32_t>(jobs_.size());
  }
  const JobGraph& graph(JobId job) const;
  const std::string& job_name(JobId job) const { return graph(job).name(); }

  bool job_finished(JobId job) const;
  SimTime job_finish_time(JobId job) const;
  /// Completion time = finish - submit.  Job must have finished.
  SimDuration jct(JobId job) const;

  std::uint32_t running_tasks_of(JobId job) const;

  /// Runtime of a submitted stage; nullptr before its barrier clears.
  /// Remains valid after the stage completes (attempt history is kept).
  StageRuntime* stage_runtime(StageId stage);
  const StageRuntime* stage_runtime(StageId stage) const;

  // --- Operations used by the reservation core -----------------------------

  /// Reserve an idle slot.  Schedules the expiry event if the reservation
  /// carries a finite deadline.  Afterwards the slot is offered once to
  /// higher-priority task sets (they may override immediately).
  void reserve_slot(SlotId slot, Reservation reservation);

  /// Release a reservation and re-offer the slot.
  void release_reservation(SlotId slot);

  /// Launch a straggler copy of `task_index` on a slot reserved for the
  /// stage's job.  Returns false if preconditions fail (task already done,
  /// copy already live, slot not reserved for this job).
  bool launch_copy(StageId stage, std::uint32_t task_index, SlotId slot);

  // --- FailureSink (fault injection) ---------------------------------------
  //
  // Per failed slot, in order: a running attempt is killed (and its logical
  // task re-queued unless a live twin elsewhere masks the failure), a held
  // reservation is broken (ReservationEndReason::SlotFailed, then the hook's
  // on_slot_failed), the slot goes Dead, and every stage output resident on
  // it is invalidated — finished producer tasks whose data lived there are
  // resurrected, re-opening their stage's barrier if it had completed.
  // Recovery returns the slot Idle, cold and empty, through the normal
  // on_slot_idle/offer path.  All four calls are idempotent.

  void fail_node(NodeId node) override;
  void recover_node(NodeId node) override;
  void fail_slot(SlotId slot) override;
  void recover_slot(SlotId slot) override;

 private:
  struct JobState {
    explicit JobState(JobGraph g) : graph(std::move(g)) {}
    JobGraph graph;
    SimTime finish_time = -1.0;
    std::uint32_t finished_stages = 0;
    std::uint32_t running_tasks = 0;
    /// Per stage: number of parent stages not yet finished.
    std::vector<std::uint32_t> unfinished_parents;
    /// Per stage: runtime, created at submission; nullptr until the stage's
    /// barrier clears.  The records live in the engine's stage arena
    /// (stable addresses, chunked allocation).
    std::vector<StageRuntime*> runtimes;
    /// Per stage index: slots on which the stage's tasks completed (the
    /// locality index consumed by child-stage submission).  Dense by stage
    /// index and job-local, so lookups are an array deref and teardown is
    /// proportional to the job, not to all jobs ever run.
    std::vector<std::vector<SlotId>> output_slots;
    bool done() const { return finished_stages == graph.num_stages(); }
  };

  JobState& state(JobId job) { return jobs_.at(job.v); }
  const JobState& state(JobId job) const { return jobs_.at(job.v); }

  void arrive(JobId job);
  void submit_stage(JobId job, std::uint32_t stage_index);

  /// Draw base durations for a stage (explicit overrides win).
  std::vector<double> draw_durations(const StageSpec& spec);

  /// Offer one freed slot to pending task sets; at most one task starts.
  void offer_slot(SlotId slot);

  /// Let a stage greedily grab every available slot it can use.
  void place_stage_tasks(StageRuntime& stage);

  /// Append the ReservedIdle slots a PriorityOverride hook would approve for
  /// `job` at `priority` (foreign reservations of strictly lower priority),
  /// in ascending slot-id order, by merging the priority buckets.
  void append_overridable_reserved(JobId job, int priority,
                                   std::vector<SlotId>& out) const;

  /// Can `stage` start its next pending task on `slot` right now?
  /// Checks approval and delay scheduling.  `slot` may be Idle or
  /// ReservedIdle; reservation override is part of approval.
  bool stage_accepts_slot(const StageRuntime& stage, SlotId slot) const;

  void start_attempt(StageRuntime& stage, TaskAttempt& attempt, SlotId slot);
  /// `epoch` is the attempt's epoch at scheduling time; a mismatch marks the
  /// event as stale (the attempt was failure-resurrected in between).
  void handle_completion(StageId stage_id, TaskId task, std::uint32_t epoch);
  void kill_attempt(StageRuntime& stage, TaskAttempt& attempt);
  void on_stage_complete(StageRuntime& stage);
  void finish_job(JobId job);

  // --- Failure handling helpers --------------------------------------------

  /// Drain and kill one slot; stages that gained pending tasks are appended
  /// to `to_place` (placement is deferred so a node failure drains every
  /// slot before any re-placement).
  void fail_slot_impl(SlotId slot, std::vector<StageRuntime*>& to_place);
  void recover_slot_impl(SlotId slot);
  /// Resurrect finished tasks whose outputs were resident on `slot`.
  void invalidate_outputs(SlotId slot, std::vector<StageRuntime*>& to_place);
  /// Re-insert a stage into active_stages_ if it is not there already.
  void ensure_active(StageRuntime& stage);
  /// Offer pending work to the cluster for each distinct stage, in order.
  void place_after_failure(const std::vector<StageRuntime*>& to_place);

  void arm_locality_retry(StageRuntime& stage);

  bool is_local(const StageRuntime& stage, SlotId slot) const;

  TaskFinishInfo make_finish_info(const StageRuntime& stage,
                                  const TaskAttempt& attempt) const;

  SchedConfig config_;
  Simulator sim_;
  Cluster cluster_;
  Rng rng_;

  /// Job records by raw job id; arena-backed so JobState addresses are
  /// stable (ActiveStage caches them) without one heap object per job.
  Arena<JobState> jobs_;
  /// Stage runtimes in submission order, arena-backed for the same reason:
  /// attempt events, the active-stage table, and JobState::runtimes all hold
  /// raw StageRuntime pointers across the engine's lifetime.
  Arena<StageRuntime> stage_arena_;
  /// One entry per stage with pending tasks, in submission order — a
  /// struct-of-cached-keys table.  The runtime and job-state pointers are
  /// stable for the engine's lifetime (both arena-backed), and
  /// every policy key that cannot change while a stage is active (priority,
  /// submit time, fair weight, ids) is flattened into the entry, so the
  /// per-offer precedence scan — the hottest loop at fig15 scale — touches
  /// one contiguous array plus a single `running_tasks` load per entry
  /// instead of chasing runtime -> id -> job -> graph -> spec.
  struct ActiveStage {
    StageRuntime* runtime;
    const JobState* job;       ///< for the (mutable) running_tasks share load
    double policy_score;       ///< StageSelector::stage_score; 0 if none
    int priority;              ///< graph.priority()
    double submit_time;        ///< graph.submit_time()
    double fair_weight;        ///< graph.spec().fair_weight
    std::uint32_t job_raw;     ///< id().job.v — final FIFO tie-breaks
    std::uint32_t stage_index; ///< id().index
  };
  std::vector<ActiveStage> active_stages_;

  ActiveStage make_active(StageRuntime& stage, const JobState& js) const;
  /// Policy order over cached keys: fair share (or priority), then
  /// submit time, then job id, then stage index — a total order.
  bool active_precedes(const ActiveStage& a, const ActiveStage& b) const;

  /// Reusable candidate buffer for place_stage_tasks (capacity persists
  /// across calls; moved out during use so any unexpected re-entry degrades
  /// to a fresh allocation instead of corruption).
  std::vector<SlotId> candidate_scratch_;

  std::unique_ptr<ReservationHook> hook_;
  std::vector<EngineObserver*> observers_;
  bool started_ = false;  ///< the simulation has begun stepping
  bool drained_ = false;  ///< drain()/run() completed; the engine is closed
};

}  // namespace ssr
