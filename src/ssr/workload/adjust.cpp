#include "ssr/workload/adjust.h"

#include <algorithm>
#include <cmath>

#include "ssr/common/check.h"

namespace ssr {

JobSpec pareto_adjust(JobSpec spec, double alpha, Rng& rng) {
  for (StageSpec& st : spec.stages) {
    const double mean = st.duration->mean();
    const DurationDistPtr pareto = pareto_duration_with_mean(alpha, mean);
    std::vector<double> durations(st.num_tasks);
    for (double& d : durations) d = pareto->sample(rng);
    st.explicit_durations = std::move(durations);
    st.duration = pareto;
  }
  return spec;
}

JobSpec prolong(JobSpec spec, double factor) {
  SSR_CHECK_MSG(factor > 0.0, "factor must be positive");
  for (StageSpec& st : spec.stages) {
    st.duration = scaled_duration(st.duration, factor);
    if (st.explicit_durations) {
      for (double& d : *st.explicit_durations) d *= factor;
    }
  }
  return spec;
}

JobSpec scale_parallelism(JobSpec spec, double factor) {
  SSR_CHECK_MSG(factor > 0.0, "factor must be positive");
  for (StageSpec& st : spec.stages) {
    const auto scaled = static_cast<std::uint32_t>(
        std::lround(static_cast<double>(st.num_tasks) * factor));
    const std::uint32_t new_tasks = std::max<std::uint32_t>(1, scaled);
    if (st.explicit_durations) {
      // Explicit durations no longer line up; drop them back to the model.
      st.explicit_durations.reset();
    }
    st.num_tasks = new_tasks;
  }
  return spec;
}

}  // namespace ssr
