// Synthetic TPC-DS-style SQL query jobs.
//
// The paper's SQL traces (Ousterhout et al., 20 TPC-DS queries) expose the
// one property ML chains lack: the degree of parallelism *changes* between
// phases — wide scans feed narrower joins and aggregations, and shuffles can
// widen again.  Sec. VI-B attributes SQL jobs' larger slowdown to exactly
// this, making them the stress test for pre-reservation (Fig. 16).
//
// Each of the 20 query templates is a small tree DAG with a deterministic
// shape derived from the query index; task durations are lognormal.
#pragma once

#include <cstdint>
#include <string>

#include "ssr/common/rng.h"
#include "ssr/dag/job.h"

namespace ssr {

struct SqlJobParams {
  std::uint32_t query_index = 0;    ///< 0..19: selects the DAG template
  std::uint32_t base_parallelism = 16;  ///< width of the scan phases
  double mean_task_seconds = 3.0;
  double skew_sigma = 0.4;
  int priority = 10;
  SimTime submit_time = 0.0;
  bool parallelism_known = true;
};

/// Build one TPC-DS-like query job.  Shapes cycle deterministically through
/// 20 templates mixing shrinking and expanding phase widths.
JobSpec make_sql_query(const SqlJobParams& params);

}  // namespace ssr
