#include "ssr/workload/open_arrival.h"

#include <algorithm>
#include <sstream>

#include "ssr/common/check.h"
#include "ssr/common/rng.h"
#include "ssr/workload/mlbench.h"
#include "ssr/workload/sqlbench.h"

namespace ssr {

namespace {

JobSpec make_template(Rng& rng, const OpenTenantProfile& profile,
                      std::uint32_t parallelism, SimTime at) {
  // Rotate through the four job families at random; the draw happens before
  // the switch so every family consumes the same number of random values.
  const auto kind = rng.uniform_int(0, 3);
  switch (kind) {
    case 0:
      return make_kmeans(parallelism, profile.priority, at);
    case 1:
      return make_svm(parallelism, profile.priority, at);
    case 2:
      return make_pagerank(parallelism, profile.priority, at);
    default: {
      SqlJobParams p;
      p.query_index = static_cast<std::uint32_t>(rng.uniform_int(0, 19));
      p.base_parallelism = parallelism;
      p.priority = profile.priority;
      p.submit_time = at;
      return make_sql_query(p);
    }
  }
}

}  // namespace

std::vector<OpenArrival> make_open_arrivals(
    const std::vector<OpenTenantProfile>& profiles, std::uint64_t seed) {
  Rng root(seed);
  std::vector<OpenArrival> merged;
  for (std::uint32_t ti = 0; ti < profiles.size(); ++ti) {
    const OpenTenantProfile& profile = profiles[ti];
    SSR_CHECK_MSG(!profile.tenant.empty(), "tenant needs a name");
    SSR_CHECK_MSG(profile.mean_interarrival > 0.0,
                  "tenant " << profile.tenant
                            << ": mean inter-arrival must be positive");
    SSR_CHECK_MSG(profile.min_parallelism >= 1 &&
                      profile.max_parallelism >= profile.min_parallelism,
                  "tenant " << profile.tenant
                            << ": parallelism range must be ordered and >= 1");
    // fork() keys on the fork counter, so tenant streams are independent of
    // each other's draw counts — see the file comment.
    Rng rng = root.fork();
    SimTime t = profile.start;
    for (std::uint32_t i = 0; i < profile.num_jobs; ++i) {
      t += rng.exponential_mean(profile.mean_interarrival);
      const auto parallelism = static_cast<std::uint32_t>(rng.uniform_int(
          profile.min_parallelism, profile.max_parallelism));
      OpenArrival arrival;
      arrival.tenant = profile.tenant;
      arrival.at = t;
      arrival.spec = make_template(rng, profile, parallelism, t);
      std::ostringstream name;
      name << profile.tenant << "-" << arrival.spec.name << "-" << i;
      arrival.spec.name = name.str();
      merged.push_back(std::move(arrival));
    }
  }
  // Stable sort on time only: streams were appended in (tenant, sequence)
  // order, so equal-time arrivals keep that order — one canonical stream.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const OpenArrival& a, const OpenArrival& b) {
                     return a.at < b.at;
                   });
  return merged;
}

}  // namespace ssr
