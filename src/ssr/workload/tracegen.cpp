#include "ssr/workload/tracegen.h"

#include <algorithm>
#include <string>

#include "ssr/common/check.h"

namespace ssr {

std::vector<JobSpec> make_background_jobs(const TraceGenConfig& config) {
  SSR_CHECK_MSG(config.num_jobs > 0, "need at least one job");
  SSR_CHECK_MSG(config.window > 0.0, "window must be positive");
  SSR_CHECK_MSG(config.scale_down > 0.0, "scale down must be positive");
  SSR_CHECK_MSG(config.runtime_multiplier > 0.0,
                "runtime multiplier must be positive");

  SSR_CHECK_MSG(!config.vary_demand ||
                    (config.demand_min > 0.0 &&
                     config.demand_min <= config.demand_max),
                "demand range must satisfy 0 < min <= max");

  Rng rng(config.seed);
  // Demand draws live on their own stream: the main stream's draw sequence
  // (arrivals, sizes, phases) is part of the committed goldens and must not
  // shift when demand variation is toggled.
  Rng demand_rng(config.seed ^ 0xd3a1d5c0ffee5a1full);
  const double mean_task = config.mean_task_seconds / config.scale_down *
                           config.runtime_multiplier;
  const DurationDistPtr task_dist =
      pareto_duration_with_mean(config.pareto_alpha, mean_task);

  std::vector<JobSpec> jobs;
  jobs.reserve(config.num_jobs);

  // Poisson arrivals over the window: exponential gaps with mean
  // window / num_jobs, clamped to the window.
  const double gap_mean =
      config.window / static_cast<double>(config.num_jobs);
  SimTime arrival = 0.0;

  for (std::uint32_t i = 0; i < config.num_jobs; ++i) {
    arrival += rng.exponential_mean(gap_mean);
    const SimTime submit = std::min<SimTime>(arrival, config.window);

    const bool large = rng.bernoulli(config.large_job_fraction);
    const std::uint32_t max_tasks =
        large ? config.large_job_max_tasks : config.small_job_max_tasks;
    const auto tasks = static_cast<std::uint32_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_tasks)));

    const auto draw_demand = [&]() -> Resources {
      return {demand_rng.uniform(config.demand_min, config.demand_max),
              demand_rng.uniform(config.demand_min, config.demand_max),
              demand_rng.uniform(config.demand_min, config.demand_max)};
    };

    JobBuilder b("bg-" + std::to_string(i));
    b.priority(config.priority).submit_at(submit).parallelism_known(false);
    b.stage(tasks, task_dist);
    if (config.vary_demand) b.demand(draw_demand());
    if (rng.bernoulli(config.two_phase_fraction)) {
      // A reduce-like downstream phase, typically narrower.
      const std::uint32_t reduce_tasks = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 rng.uniform_int(1, std::max<std::int64_t>(1, tasks / 2))));
      b.stage(reduce_tasks, task_dist);
      if (config.vary_demand) b.demand(draw_demand());
    }
    jobs.push_back(b.build());
  }
  return jobs;
}

}  // namespace ssr
