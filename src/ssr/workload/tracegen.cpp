#include "ssr/workload/tracegen.h"

#include <algorithm>
#include <string>

#include "ssr/common/check.h"

namespace ssr {

std::vector<JobSpec> make_background_jobs(const TraceGenConfig& config) {
  SSR_CHECK_MSG(config.num_jobs > 0, "need at least one job");
  SSR_CHECK_MSG(config.window > 0.0, "window must be positive");
  SSR_CHECK_MSG(config.scale_down > 0.0, "scale down must be positive");
  SSR_CHECK_MSG(config.runtime_multiplier > 0.0,
                "runtime multiplier must be positive");

  Rng rng(config.seed);
  const double mean_task = config.mean_task_seconds / config.scale_down *
                           config.runtime_multiplier;
  const DurationDistPtr task_dist =
      pareto_duration_with_mean(config.pareto_alpha, mean_task);

  std::vector<JobSpec> jobs;
  jobs.reserve(config.num_jobs);

  // Poisson arrivals over the window: exponential gaps with mean
  // window / num_jobs, clamped to the window.
  const double gap_mean =
      config.window / static_cast<double>(config.num_jobs);
  SimTime arrival = 0.0;

  for (std::uint32_t i = 0; i < config.num_jobs; ++i) {
    arrival += rng.exponential_mean(gap_mean);
    const SimTime submit = std::min<SimTime>(arrival, config.window);

    const bool large = rng.bernoulli(config.large_job_fraction);
    const std::uint32_t max_tasks =
        large ? config.large_job_max_tasks : config.small_job_max_tasks;
    const auto tasks = static_cast<std::uint32_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(max_tasks)));

    JobBuilder b("bg-" + std::to_string(i));
    b.priority(config.priority).submit_at(submit).parallelism_known(false);
    b.stage(tasks, task_dist);
    if (rng.bernoulli(config.two_phase_fraction)) {
      // A reduce-like downstream phase, typically narrower.
      const std::uint32_t reduce_tasks = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 rng.uniform_int(1, std::max<std::int64_t>(1, tasks / 2))));
      b.stage(reduce_tasks, task_dist);
    }
    jobs.push_back(b.build());
  }
  return jobs;
}

}  // namespace ssr
