// Open-system arrival process: seeded Poisson job traffic over the existing
// job templates.
//
// The closed harness submits a fixed batch and runs to completion; an open
// system receives jobs continuously while it executes.  This generator
// synthesizes that traffic: per tenant, a Poisson arrival process
// (exponential inter-arrival gaps) over a mix of the repo's job templates —
// the SparkBench ML chains (mlbench.h) and the TPC-DS-like SQL DAGs
// (sqlbench.h) — with parallelism drawn per job from the tenant's range.
//
// Determinism: each tenant's stream comes from its own forked Rng, derived
// from (seed, tenant index), so adding a tenant or changing one tenant's
// parameters never perturbs another tenant's arrivals.  The merged schedule
// is sorted by arrival time with ties broken by tenant order, then by
// per-tenant sequence — a total order, so downstream consumers (the
// open-system driver and the open-vs-closed equivalence suite) see one
// canonical stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ssr/common/time.h"
#include "ssr/dag/job.h"

namespace ssr {

/// One tenant's arrival process.
struct OpenTenantProfile {
  std::string tenant = "default";
  /// Mean exponential gap between consecutive arrivals (sim seconds).
  double mean_interarrival = 10.0;
  std::uint32_t num_jobs = 50;
  /// Per-job parallelism is uniform in [min_parallelism, max_parallelism].
  std::uint32_t min_parallelism = 4;
  std::uint32_t max_parallelism = 20;
  int priority = 0;
  /// First gap is drawn from `start` (arrivals never land exactly at 0, so
  /// admission always happens strictly inside the run).
  SimTime start = 0.0;
};

/// One arrival of the merged open workload.
struct OpenArrival {
  std::string tenant;
  SimTime at = 0.0;  ///< equals spec.submit_time as generated
  JobSpec spec;
};

/// Generate and merge every tenant's stream.  Deterministic in
/// (profiles, seed); see the file comment for the tie-break order.
std::vector<OpenArrival> make_open_arrivals(
    const std::vector<OpenTenantProfile>& profiles, std::uint64_t seed);

}  // namespace ssr
