// Google-cluster-trace-like background workload synthesizer.
//
// The paper's background workloads are "100 synthesized jobs randomly
// sampled from the Google cluster traces in a one-hour window" (8000 jobs in
// the large-scale simulation), with task runtimes scaled down 10x for the
// small cluster.  The raw trace is not available offline, so we synthesize
// from the published characteristics the paper relies on:
//   * arrivals spread over the window (Poisson process);
//   * most jobs are small (the smallest 90% of jobs consume ~6% of
//     resources — Sec. III-C), a few are large;
//   * task durations are Pareto heavy-tailed with alpha ~ 1.6 (Sec. IV-C);
//   * background jobs are batch: single phase or a short two-phase chain.
#pragma once

#include <cstdint>
#include <vector>

#include "ssr/common/rng.h"
#include "ssr/dag/job.h"

namespace ssr {

struct TraceGenConfig {
  std::uint32_t num_jobs = 100;
  SimDuration window = 3600.0;  ///< arrival window (the paper's one hour)
  double pareto_alpha = 1.6;    ///< task-duration tail index
  double mean_task_seconds = 300.0;  ///< before scale_down (trace minutes)
  double scale_down = 10.0;     ///< the paper scales trace runtimes by 10x
  double runtime_multiplier = 1.0;  ///< "prolonged background jobs" knob (2x)
  double two_phase_fraction = 0.3;  ///< jobs with a reduce-like second phase
  std::uint32_t small_job_max_tasks = 10;   ///< parallelism of small jobs
  std::uint32_t large_job_max_tasks = 500;  ///< parallelism cap of large jobs
  double large_job_fraction = 0.3;  ///< the resource-hungry minority
  int priority = 0;
  std::uint64_t seed = 12345;

  /// When true, every stage draws a per-task resource-demand vector with
  /// each component uniform in [demand_min, demand_max] (cpu/mem/net drawn
  /// independently).  The draws come from a *separate* RNG stream derived
  /// from `seed`, so turning this on does not perturb the arrival /
  /// parallelism / duration draws above — and the default (off) leaves the
  /// byte-exact job mix every committed golden was recorded with.  Demands
  /// never exceed 1.0, so they fit the default unit slot; the knob exists
  /// to give the multi-resource packing policy (DESIGN.md §14) a workload
  /// with real packing decisions.
  bool vary_demand = false;
  double demand_min = 0.25;
  double demand_max = 1.0;
};

/// Synthesize the background job mix.  Deterministic in `config.seed`.
std::vector<JobSpec> make_background_jobs(const TraceGenConfig& config);

}  // namespace ssr
