// Workload adjustments used by the evaluation.
#pragma once

#include "ssr/common/rng.h"
#include "ssr/dag/job.h"

namespace ssr {

/// Fig. 17 methodology: re-draw every stage's task durations from a Pareto
/// distribution with shape `alpha` and the *same mean* as the stage's
/// original duration model, materializing them as explicit durations.  The
/// stage's resampling distribution (used for straggler copies) is replaced
/// by the same Pareto model.
JobSpec pareto_adjust(JobSpec spec, double alpha, Rng& rng);

/// "Prolonged background jobs": multiply every stage's task durations by
/// `factor` (the paper's task runtime x2 experiments).
JobSpec prolong(JobSpec spec, double factor);

/// Double the degree of parallelism of every stage (the paper's "MLlib jobs
/// with 2x degree of parallelism" foreground suite in Fig. 15).
JobSpec scale_parallelism(JobSpec spec, double factor);

}  // namespace ssr
