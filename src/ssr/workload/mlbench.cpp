#include "ssr/workload/mlbench.h"

#include "ssr/common/check.h"

namespace ssr {

JobSpec make_ml_job(const MlJobParams& params) {
  SSR_CHECK_MSG(params.parallelism > 0, "parallelism must be positive");
  SSR_CHECK_MSG(params.iterations > 0, "need at least one iteration");
  JobBuilder b(params.name);
  b.priority(params.priority)
      .submit_at(params.submit_time)
      .parallelism_known(params.parallelism_known);
  // Load/parse phase: reads input, noticeably longer than iterations.
  b.stage(params.parallelism,
          lognormal_duration(
              params.mean_task_seconds * params.load_phase_factor,
              params.skew_sigma));
  for (std::uint32_t i = 0; i < params.iterations; ++i) {
    b.stage(params.parallelism,
            lognormal_duration(params.mean_task_seconds, params.skew_sigma));
  }
  return b.build();
}

JobSpec make_kmeans(std::uint32_t parallelism, int priority,
                    SimTime submit_time) {
  MlJobParams p;
  p.name = "kmeans";
  p.parallelism = parallelism;
  p.iterations = 8;           // Lloyd iterations until convergence
  p.mean_task_seconds = 4.0;  // distance computation per partition
  p.skew_sigma = 0.35;
  p.priority = priority;
  p.submit_time = submit_time;
  return make_ml_job(p);
}

JobSpec make_svm(std::uint32_t parallelism, int priority, SimTime submit_time) {
  MlJobParams p;
  p.name = "svm";
  p.parallelism = parallelism;
  p.iterations = 12;          // SGD epochs: more, shorter phases
  p.mean_task_seconds = 2.5;  // gradient computation per partition
  p.skew_sigma = 0.30;
  p.priority = priority;
  p.submit_time = submit_time;
  return make_ml_job(p);
}

JobSpec make_pagerank(std::uint32_t parallelism, int priority,
                      SimTime submit_time) {
  MlJobParams p;
  p.name = "pagerank";
  p.parallelism = parallelism;
  p.iterations = 10;          // power iterations
  p.mean_task_seconds = 5.0;  // edge-centric updates, heavier tasks
  p.skew_sigma = 0.55;        // power-law vertex degrees: stronger skew
  p.priority = priority;
  p.submit_time = submit_time;
  return make_ml_job(p);
}

}  // namespace ssr
