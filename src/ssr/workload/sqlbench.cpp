#include "ssr/workload/sqlbench.h"

#include <algorithm>
#include <cmath>

#include "ssr/common/check.h"

namespace ssr {
namespace {

std::uint32_t scaled_width(std::uint32_t base, double factor) {
  const auto w =
      static_cast<std::uint32_t>(std::lround(static_cast<double>(base) * factor));
  return std::max<std::uint32_t>(1, w);
}

}  // namespace

JobSpec make_sql_query(const SqlJobParams& params) {
  SSR_CHECK_MSG(params.query_index < 20, "query index must be 0..19");
  SSR_CHECK_MSG(params.base_parallelism > 0, "parallelism must be positive");

  const std::uint32_t q = params.query_index;
  JobBuilder b("tpcds-q" + std::to_string(q + 1));
  b.priority(params.priority)
      .submit_at(params.submit_time)
      .parallelism_known(params.parallelism_known);

  auto dist = [&](double factor) {
    return lognormal_duration(params.mean_task_seconds * factor,
                              params.skew_sigma);
  };

  // Width multipliers cycle per query so the suite mixes every transition
  // direction Algorithm 1 distinguishes: equal (m == n), shrinking (m > n),
  // and expanding (m < n).
  static constexpr double kWidthCycle[] = {1.0, 0.5, 1.5, 0.75, 1.25, 0.25};
  const std::uint32_t depth = 3 + q % 4;  // 3..6 phases after the scans

  if (q % 3 == 0) {
    // Join template: two scan branches feeding a shuffle join.
    const std::uint32_t fact_scan = params.base_parallelism;
    const std::uint32_t dim_scan = scaled_width(params.base_parallelism, 0.5);
    b.stage_with_parents(fact_scan, dist(1.0), {});        // stage 0
    b.stage_with_parents(dim_scan, dist(0.6), {});         // stage 1
    const std::uint32_t join_width =
        scaled_width(params.base_parallelism, kWidthCycle[q % 6]);
    b.stage_with_parents(join_width, dist(1.2), {0, 1});   // stage 2
    std::uint32_t prev = 2;
    for (std::uint32_t d = 1; d < depth; ++d) {
      const double f = kWidthCycle[(q + d) % 6];
      b.stage_with_parents(scaled_width(params.base_parallelism, f),
                           dist(0.8), {prev});
      prev += 1;
    }
  } else {
    // Pipeline template: scan followed by depth phases of varying widths.
    b.stage(params.base_parallelism, dist(1.0));
    for (std::uint32_t d = 0; d < depth; ++d) {
      const double f = kWidthCycle[(q + d) % 6];
      b.stage(scaled_width(params.base_parallelism, f), dist(0.8));
    }
  }
  return b.build();
}

}  // namespace ssr
