// Synthetic SparkBench-style machine-learning / graph-analytics jobs.
//
// The paper's foreground workloads are KMeans, SVM and PageRank from
// SparkBench.  For the mechanism under study only three properties matter:
// (1) a chain of many barrier-separated phases (iterative algorithms),
// (2) a stable degree of parallelism across phases (Sec. III-B Case-1 and
//     the "91% of jobs never change parallelism" statistic), and
// (3) mildly skewed task durations within a phase (data skew, stragglers).
// These generators reproduce those shapes with documented defaults.
#pragma once

#include <cstdint>
#include <string>

#include "ssr/common/rng.h"
#include "ssr/dag/job.h"

namespace ssr {

struct MlJobParams {
  std::string name = "kmeans";
  std::uint32_t parallelism = 20;   ///< degree of parallelism per phase
  std::uint32_t iterations = 8;     ///< iterative phases after the load phase
  double mean_task_seconds = 4.0;   ///< median task runtime per phase
  double skew_sigma = 0.35;         ///< lognormal sigma (in-phase skew)
  double load_phase_factor = 2.0;   ///< the input-load phase is longer
  int priority = 10;
  SimTime submit_time = 0.0;
  /// Iterative ML jobs keep their parallelism; the scheduler may use it.
  bool parallelism_known = true;
};

/// Chain job: load phase + `iterations` compute phases, stable parallelism.
JobSpec make_ml_job(const MlJobParams& params);

/// The three SparkBench applications with paper-flavored defaults.
/// `parallelism` scales the job (Fig. 1 uses 8; Figs. 4/5 use 20).
JobSpec make_kmeans(std::uint32_t parallelism, int priority,
                    SimTime submit_time = 0.0);
JobSpec make_svm(std::uint32_t parallelism, int priority,
                 SimTime submit_time = 0.0);
JobSpec make_pagerank(std::uint32_t parallelism, int priority,
                      SimTime submit_time = 0.0);

}  // namespace ssr
