// Discrete-event simulation engine.
//
// The simulator advances a virtual clock from event to event.  All other
// modules (scheduler, reservation manager, workload arrival process) interact
// with time exclusively through this interface, which makes every experiment
// deterministic and instantaneous in wall-clock terms.
#pragma once

#include <cstddef>

#include "ssr/common/time.h"
#include "ssr/sim/event_queue.h"

namespace ssr {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  /// Current simulated time.  Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at`; `at` must not be in the past.
  void schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` after `delay` (>= 0) simulated seconds.
  void schedule_after(SimDuration delay, Callback fn);

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains.  `max_events` guards against runaway
  /// feedback loops in buggy policies (0 = unlimited).
  void run(std::size_t max_events = 0);

  /// Run events with time <= horizon; afterwards now() == horizon if any
  /// events remained, or the last event time otherwise.
  void run_until(SimTime horizon);

  std::size_t processed_events() const { return processed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::size_t processed_ = 0;
};

}  // namespace ssr
