// Discrete-event simulation engine.
//
// The simulator advances a virtual clock from event to event.  All other
// modules (scheduler, reservation manager, workload arrival process) interact
// with time exclusively through this interface, which makes every experiment
// deterministic and instantaneous in wall-clock terms.
#pragma once

#include <cstddef>

#include "ssr/common/time.h"
#include "ssr/sim/event_queue.h"

namespace ssr {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  Simulator() = default;
  /// Select the event-queue backend / shard layout.  Pop order — and thus
  /// every simulation outcome — is bit-identical across all option values.
  explicit Simulator(const EventQueueOptions& opts) : queue_(opts) {}

  /// Current simulated time.  Starts at 0.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `at`; `at` must not be in the past.
  /// The band decides same-instant ordering (see EventBand); external inputs
  /// (arrivals, failure schedules) use their own bands so the open-system
  /// stepping API reproduces closed-batch tie-breaking exactly.
  void schedule_at(SimTime at, Callback fn);
  void schedule_at(SimTime at, EventBand band, Callback fn);
  /// Homed variant: stores the event in `home`'s shard lane when sharding is
  /// on.  Purely a storage-locality hint — ordering is unaffected.
  void schedule_at(SimTime at, EventBand band, NodeId home, Callback fn);

  /// Schedule `fn` after `delay` (>= 0) simulated seconds.
  void schedule_after(SimDuration delay, Callback fn);
  void schedule_after(SimDuration delay, NodeId home, Callback fn);

  /// Forward a conservative event-spacing bound to the queue's worker
  /// threads (see EventQueue::note_spacing_hint).
  void note_event_spacing(SimDuration spacing) {
    queue_.note_spacing_hint(spacing);
  }

  /// Run one event.  Returns false when the queue is empty.
  bool step();

  /// Bounded single step: run the earliest event only if its time is
  /// <= horizon; returns false (and pops nothing, so no event past the
  /// horizon can be over-stepped) otherwise.  Events tied exactly at the
  /// horizon — e.g. an injected failure and a stage completion at the same
  /// boundary instant — all fire, in band/insertion order.
  bool step_until(SimTime horizon);

  /// Run until the queue drains.  `max_events` guards against runaway
  /// feedback loops in buggy policies (0 = unlimited).
  void run(std::size_t max_events = 0);

  /// Run events with time <= horizon; afterwards now() == horizon exactly
  /// (simulated time passes even when no events fired — the open-system
  /// notion of "now").  `horizon` must not be in the past.
  void run_until(SimTime horizon);

  /// Time of the earliest pending event; kTimeInfinity when idle.
  SimTime next_event_time() const { return queue_.peek_time(); }

  std::size_t processed_events() const { return processed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  std::size_t processed_ = 0;
};

}  // namespace ssr
