// Min-time event queue for the discrete-event engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ssr/common/time.h"

namespace ssr {

/// Time-ordered queue of callbacks.  Events at the same instant fire in
/// insertion order (a monotone sequence number breaks ties), which makes runs
/// deterministic regardless of floating-point coincidences.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  void push(SimTime at, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssr
