// Min-time event queue for the discrete-event engine.
//
// One API, two storage backends (binary heap / calendar queue) and an
// optional per-node-group shard layer — all implementing the same total
// order (time, band, insertion sequence), so pop order is bit-identical
// across every backend x shard-count combination by construction.  See
// DESIGN.md §13 for the determinism argument and the threading model.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sim/event_queue_options.h"

namespace ssr {

/// Type-erased move-only nullary callable (a minimal stand-in for C++23's
/// std::move_only_function).  std::function requires its target to be
/// copyable, which forbids lambdas that capture move-only state and forces
/// the queue to copy callbacks around; this wrapper only ever moves.
///
/// Targets up to kInlineSize bytes live inside the wrapper itself (small
/// buffer optimization) — every engine-scheduled lambda fits, so the
/// millions of events a fig15-scale run pushes never touch the allocator.
/// Larger or throwing-move targets fall back to a heap allocation.
class UniqueCallback {
 public:
  UniqueCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueCallback>>>
  UniqueCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &kInlineVTable<D>;
    } else {
      auto owned = std::make_unique<D>(std::forward<F>(fn));
      ::new (static_cast<void*>(buf_)) D*(owned.release());
      vt_ = &kHeapVTable<D>;
    }
  }

  UniqueCallback(UniqueCallback&& other) noexcept { steal(other); }
  UniqueCallback& operator=(UniqueCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;
  ~UniqueCallback() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  explicit operator bool() const { return vt_ != nullptr; }

 private:
  static constexpr std::size_t kInlineSize = 48;

  struct VTable {
    void (*invoke)(void*);
    /// Move-construct the target from `src` into `dst`, then destroy `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        D* s = static_cast<D*>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) { ::new (dst) D*(*static_cast<D**>(src)); },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void steal(UniqueCallback& other) {
    if (other.vt_ != nullptr) {
      vt_ = other.vt_;
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];
};

/// Deterministic tie-break class for events scheduled at the same instant.
/// Bands exist so the *open-system* stepping API can reproduce the closed
/// batch setup bit for bit: in a closed run every failure-schedule event is
/// pushed before every job arrival, and every arrival before any event the
/// simulation itself generates, so at equal timestamps the insertion-order
/// tie-break fires them in exactly this class order.  An open run pushes
/// arrivals incrementally (so their raw sequence numbers interleave with
/// internal events), and the band restores the closed ordering regardless of
/// push order.  Within a band, insertion order still decides.
enum class EventBand : std::uint8_t {
  kFailure = 0,   ///< fault-injection schedule events
  kArrival = 1,   ///< job arrival / admission events
  kInternal = 2,  ///< everything the simulation schedules while running
};

/// Time-ordered queue of callbacks.  Events at the same instant fire in
/// (band, insertion order): a monotone sequence number breaks ties within a
/// band, which makes runs deterministic regardless of floating-point
/// coincidences.
///
/// Sharding: with opts.shards > 1 the queue keeps one central lane plus one
/// lane per node group, and events pushed with a home node are stored in
/// that group's lane.  The sequence number is global and assigned at push
/// time, so the driver's pop — an argmin over lane heads under the full
/// (time, band, seq) order — returns exactly the event a single-lane queue
/// would have: lane assignment can never reorder anything.  One worker
/// thread per shard lane performs deferred storage maintenance (heap-lane
/// staging drains, calendar bucket presorts) behind the lane's mutex; that
/// maintenance moves no event between lanes and never changes a lane's
/// minimum, so worker progress is invisible to pop order and the queue stays
/// bit-deterministic under any thread schedule (the shard determinism suite
/// and the TSan CI leg enforce this).
///
/// All public methods are driver-thread-only; the worker threads are an
/// internal implementation detail.
class EventQueue {
 public:
  using Callback = UniqueCallback;

  EventQueue() : EventQueue(EventQueueOptions{}) {}
  explicit EventQueue(const EventQueueOptions& opts);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  void push(SimTime at, Callback fn);  ///< kInternal band, central lane
  void push(SimTime at, EventBand band, Callback fn);
  /// Route the event to `home`'s node-group lane (falls back to the central
  /// lane when sharding is off).  Ordering is unaffected by the choice —
  /// homing is purely a storage/maintenance locality hint.
  void push(SimTime at, EventBand band, NodeId home, Callback fn);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Time of the earliest pending event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Alias of next_time() under the name the bounded-advance contract uses:
  /// peek before popping, so an advance-to-horizon loop can stop *without*
  /// removing an event past the horizon (popping and re-pushing would move
  /// the event to the back of its same-instant band and reorder ties).
  SimTime peek_time() const { return next_time(); }

  /// Removes and returns the earliest event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop();

  /// Bounded advance: removes and returns the earliest event only if its
  /// time is <= horizon; nullopt otherwise (the queue is untouched, so
  /// events strictly past the horizon can never be over-stepped).  Events
  /// tied exactly at the horizon are all eligible, in band/insertion order.
  std::optional<std::pair<SimTime, Callback>> pop_if_at_or_before(
      SimTime horizon);

  EventQueueBackend backend() const { return opts_.backend; }
  std::uint32_t shards() const { return opts_.shards; }

  /// Conservative-lookahead hint: a lower bound on the delay between "now"
  /// and the completion events the engine schedules (the minimum drawn task
  /// duration — the barrier event-time structure).  Workers use it to size
  /// how far past the driver cursor calendar buckets are worth presorting:
  /// buckets inside the hint window cannot receive new completion events, so
  /// sorting them is never wasted.  Purely a performance knob — correctness
  /// and pop order never depend on it (presorting is idempotent).
  void note_spacing_hint(SimDuration spacing);

 private:
  struct Event {
    SimTime at;
    EventBand band;
    std::uint64_t seq;
    Callback fn;
  };
  struct EventKey {
    SimTime at;
    EventBand band;
    std::uint64_t seq;
  };
  static bool key_earlier(const EventKey& a, const EventKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.band != b.band) return a.band < b.band;
    return a.seq < b.seq;
  }
  static EventKey key_of(const Event& e) { return EventKey{e.at, e.band, e.seq}; }
  /// Heap comparator ("later than"): min-heap via std::push_heap/pop_heap.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };
  /// Descending sort order for calendar buckets: the bucket minimum sits at
  /// the back, so extraction is a pop_back.
  struct DescKey {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  struct Bucket {
    std::vector<Event> events;
    bool sorted = true;  ///< descending by key (min at back) when true
  };

  /// One event lane.  All fields below `mu` are guarded by `mu`; the driver
  /// and the lane's worker thread both take it for every access.
  struct Lane {
    mutable std::mutex mu;
    mutable std::condition_variable cv;

    // --- binary-heap backend ------------------------------------------------
    std::vector<Event> heap;  ///< flat min-heap under Later
    /// Driver-side push buffer when a worker serves this lane: the driver
    /// appends O(1) and the worker folds entries into `heap`; the lane
    /// minimum is min(heap front, staged_min), so draining is invisible.
    std::vector<Event> staging;
    bool staged_min_valid = false;
    EventKey staged_min{};
    /// True on heap-backend shard lanes: pushes go to `staging` and the
    /// worker folds them into `heap`.  Single-lane queues push straight into
    /// the heap (no worker exists to drain for them).
    bool staged_mode = false;

    // --- calendar backend ---------------------------------------------------
    std::vector<Bucket> buckets;
    double origin = 0.0;  ///< time of bucket index 0 (set at rebuild)
    double width = 1.0;   ///< bucket time width
    /// Driver scan cursor as an *absolute* bucket index — the value
    /// rel_index() assigns, before the mod-n wrap.  An event belongs to the
    /// cursor's window iff rel_index(event) <= cur_abs; both sides evaluate
    /// the identical floor((at - origin) / width) expression, so the check
    /// is exact.  (A floating "bucket top" accumulated with += width rounds
    /// differently from the insert-side index and can skip an event sitting
    /// within one ulp of its bucket boundary for a whole wrap — a real,
    /// order-inverting bug the shard determinism suite caught.)
    std::int64_t cur_abs = 0;
    std::size_t count = 0;  ///< events resident in buckets
    /// Far-future/non-finite events, kept out of the bucket array so bucket
    /// index arithmetic never sees +inf or a time years beyond the live
    /// population.  Invariant: every bucket event's time < far_floor <=
    /// every overflow event's time, so overflow only matters once the
    /// buckets drain (which triggers a rebuild around the overflow).
    std::vector<Event> overflow;
    bool overflow_sorted = true;  ///< descending by key (min at back)
    double far_floor = kTimeInfinity;
    /// Cached minimum (valid => buckets[min_bucket] holds the lane minimum
    /// with key min_key; the bucket may still need a sort before the min is
    /// physically at the back).
    bool min_valid = false;
    EventKey min_key{};
    std::size_t min_bucket = 0;
  };

  Lane& lane_for(NodeId home);
  void lane_push(Lane& ln, Event ev);
  std::optional<EventKey> lane_min_key(Lane& ln) const;
  Event lane_extract_min(Lane& ln);

  // Calendar internals (all called with ln.mu held; static — they touch
  // only the lane, which lets const peeks trigger lazy rebuilds).
  /// Absolute bucket index of a time, shared by insert, scan, and cursor
  /// regression so bucket membership is decided by one expression.
  /// Precondition: |(at - origin) / width| < kMaxRelIndex.
  static std::int64_t rel_index(const Lane& ln, double at);
  /// buckets[] slot of an absolute index (size is always a power of two).
  static std::size_t bucket_of(const Lane& ln, std::int64_t abs_index);
  static void cal_insert(Lane& ln, Event ev);
  static void cal_locate_min(Lane& ln);
  static void cal_rebuild(Lane& ln, std::size_t nbuckets);
  static void sort_bucket(Bucket& b);

  bool do_maintenance(Lane& ln);
  void worker_main(Lane& ln);

  EventQueueOptions opts_;
  /// unique_ptr elements: Lane holds a mutex (immovable) and worker threads
  /// capture lane addresses, so lanes must never relocate.
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<double> spacing_hint_{0.0};

  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ssr
