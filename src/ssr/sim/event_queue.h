// Min-time event queue for the discrete-event engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "ssr/common/time.h"

namespace ssr {

/// Type-erased move-only nullary callable (a minimal stand-in for C++23's
/// std::move_only_function).  std::function requires its target to be
/// copyable, which forbids lambdas that capture move-only state and forces
/// the queue to copy callbacks around; this wrapper only ever moves.
class UniqueCallback {
 public:
  UniqueCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueCallback>>>
  UniqueCallback(F&& fn)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}

  UniqueCallback(UniqueCallback&&) noexcept = default;
  UniqueCallback& operator=(UniqueCallback&&) noexcept = default;
  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  void operator()() { impl_->call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    void call() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

/// Deterministic tie-break class for events scheduled at the same instant.
/// Bands exist so the *open-system* stepping API can reproduce the closed
/// batch setup bit for bit: in a closed run every failure-schedule event is
/// pushed before every job arrival, and every arrival before any event the
/// simulation itself generates, so at equal timestamps the insertion-order
/// tie-break fires them in exactly this class order.  An open run pushes
/// arrivals incrementally (so their raw sequence numbers interleave with
/// internal events), and the band restores the closed ordering regardless of
/// push order.  Within a band, insertion order still decides.
enum class EventBand : std::uint8_t {
  kFailure = 0,   ///< fault-injection schedule events
  kArrival = 1,   ///< job arrival / admission events
  kInternal = 2,  ///< everything the simulation schedules while running
};

/// Time-ordered queue of callbacks.  Events at the same instant fire in
/// (band, insertion order): a monotone sequence number breaks ties within a
/// band, which makes runs deterministic regardless of floating-point
/// coincidences.
///
/// The storage is a binary heap over a flat vector rather than a
/// std::priority_queue: priority_queue::top() is const&, so extracting an
/// event either copies the callback or const_casts around the API.  The flat
/// heap sifts the front element to the back and moves it out, so pop() never
/// copies a callback and move-only callables work throughout.
class EventQueue {
 public:
  using Callback = UniqueCallback;

  void push(SimTime at, Callback fn);  ///< kInternal band
  void push(SimTime at, EventBand band, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Alias of next_time() under the name the bounded-advance contract uses:
  /// peek before popping, so an advance-to-horizon loop can stop *without*
  /// removing an event past the horizon (popping and re-pushing would move
  /// the event to the back of its same-instant band and reorder ties).
  SimTime peek_time() const { return next_time(); }

  /// Removes and returns the earliest event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop();

  /// Bounded advance: removes and returns the earliest event only if its
  /// time is <= horizon; nullopt otherwise (the queue is untouched, so
  /// events strictly past the horizon can never be over-stepped).  Events
  /// tied exactly at the horizon are all eligible, in band/insertion order.
  std::optional<std::pair<SimTime, Callback>> pop_if_at_or_before(
      SimTime horizon);

 private:
  struct Event {
    SimTime at;
    EventBand band;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.band != b.band) return a.band > b.band;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssr
