// Min-time event queue for the discrete-event engine.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "ssr/common/time.h"

namespace ssr {

/// Type-erased move-only nullary callable (a minimal stand-in for C++23's
/// std::move_only_function).  std::function requires its target to be
/// copyable, which forbids lambdas that capture move-only state and forces
/// the queue to copy callbacks around; this wrapper only ever moves.
class UniqueCallback {
 public:
  UniqueCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueCallback>>>
  UniqueCallback(F&& fn)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(fn))) {}

  UniqueCallback(UniqueCallback&&) noexcept = default;
  UniqueCallback& operator=(UniqueCallback&&) noexcept = default;
  UniqueCallback(const UniqueCallback&) = delete;
  UniqueCallback& operator=(const UniqueCallback&) = delete;

  void operator()() { impl_->call(); }
  explicit operator bool() const { return impl_ != nullptr; }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : fn(std::move(fn)) {}
    void call() override { fn(); }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

/// Time-ordered queue of callbacks.  Events at the same instant fire in
/// insertion order (a monotone sequence number breaks ties), which makes runs
/// deterministic regardless of floating-point coincidences.
///
/// The storage is a binary heap over a flat vector rather than a
/// std::priority_queue: priority_queue::top() is const&, so extracting an
/// event either copies the callback or const_casts around the API.  The flat
/// heap sifts the front element to the back and moves it out, so pop() never
/// copies a callback and move-only callables work throughout.
class EventQueue {
 public:
  using Callback = UniqueCallback;

  void push(SimTime at, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kTimeInfinity when empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event.  Precondition: !empty().
  std::pair<SimTime, Callback> pop();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ssr
