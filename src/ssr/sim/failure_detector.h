// Heartbeat-based failure detection over the deterministic fault-injection
// layer.
//
// PR5's FailureInjector applies ground-truth failures the instant they
// happen — an oracle no real cluster has.  Real schedulers learn about
// failures from missed heartbeats: detection lags the truth by up to a
// timeout window, short outages can go entirely unnoticed, and lossy
// heartbeat channels produce *false suspicions* — nodes declared dead while
// actually alive (cf. ray's heartbeat failure detector).
//
// The detector is a pure, deterministic schedule *transform*: it takes the
// ground-truth FailureSchedule plus a detector configuration and returns the
// schedule of what the scheduler would have *believed* — suspicion windows —
// which is then fed, unchanged, to the ordinary FailureInjector/Engine
// machinery.  The engine therefore acts on suspicion (kill-and-requeue,
// reservation release, dead-time accounting), and a falsely-suspected
// target's late "actually alive" evidence arrives as a recovery event,
// reconciling through the same epoch guards that make true recoveries safe.
// Because the transform is pure data -> data, detector runs stay exactly as
// replayable as PR5 runs: same truth, config and seed give a bit-identical
// detected schedule and hence a bit-identical event stream.
//
// Model: every monitored target emits a heartbeat each `heartbeat_period`
// simulated seconds (beats at k * period, k = 1, 2, ...).  A beat is
// delivered iff the target is truly alive at the beat instant and the beat
// is not lost to channel noise (an independent per-target Bernoulli draw,
// applied to beats up to `noise_horizon`).  After `timeout_beats`
// consecutive missed beats the target is suspected — at the exact instant of
// the timeout-th missed beat — and the suspicion clears at the next
// delivered beat.  Consequences:
//   * detection latency is bounded: suspected_at - fail_at <=
//     timeout_beats * heartbeat_period (unit-tested);
//   * outages shorter than the timeout window with no surrounding noise are
//     never detected (the schedule window disappears);
//   * pure noise can fabricate suspicion windows on healthy targets; they
//     end at the first delivered beat.
//
// heartbeat_period == 0 disables the detector: the truth schedule passes
// through verbatim (same vector, same order), reproducing PR5's
// instantaneous-detection event streams byte for byte.
//
// NodeId 0's heartbeat channel is modeled as reliable (no noise), mirroring
// make_random_node_failures' rule that node 0 never fails permanently: a
// deterministic kernel of capacity survives, so chaos scenarios always
// complete.
#pragma once

#include <cstdint>
#include <vector>

#include "ssr/common/time.h"
#include "ssr/sim/failure_injector.h"

namespace ssr {

struct FailureDetectorConfig {
  /// Seconds between heartbeats; 0 = instantaneous detection (detector off,
  /// truth passes through verbatim).
  SimDuration heartbeat_period = 0.0;

  /// Consecutive missed beats before a target is suspected (>= 1).
  std::uint32_t timeout_beats = 3;

  /// Per-beat probability that a heartbeat from a truly-alive target is lost
  /// in the channel (seeded Bernoulli, independent per target).  Applied
  /// only to beats at or before `noise_horizon`; later beats are delivered
  /// reliably, so every false suspicion eventually clears.
  double heartbeat_loss = 0.0;

  /// Horizon for channel noise.  0 auto-extends to the last truth event
  /// (noise is then only possible while failures are in flight); set it
  /// explicitly to model a lossy channel over a whole open-system run.
  SimTime noise_horizon = 0.0;

  /// Seed of the noise stream; each monitored target draws from an
  /// independent fork, so adding targets never perturbs existing draws.
  std::uint64_t seed = 1;

  bool enabled() const { return heartbeat_period > 0.0; }
};

/// One detector verdict: a contiguous window during which the target was
/// suspected dead.  `truth_fail_at` < 0 marks a false suspicion (the target
/// was alive the whole window).
struct SuspicionRecord {
  FailureEvent::Scope scope = FailureEvent::Scope::Node;
  std::uint32_t id = 0;
  SimTime suspected_at = 0.0;
  /// First delivered beat after the suspicion; kTimeInfinity = never cleared
  /// (permanent truth failure).
  SimTime cleared_at = kTimeInfinity;
  /// Ground-truth failure the suspicion detected, or -1 for false suspicion.
  SimTime truth_fail_at = -1.0;

  bool false_suspicion() const { return truth_fail_at < 0.0; }
  /// Detection latency (suspicion minus truth); meaningless if false.
  SimDuration latency() const { return suspected_at - truth_fail_at; }
};

/// What the detector concluded: the schedule the engine should act on, plus
/// the per-window audit trail relating suspicion to ground truth.
struct DetectionOutcome {
  FailureSchedule detected;
  std::vector<SuspicionRecord> suspicions;

  std::uint64_t false_suspicions() const {
    std::uint64_t n = 0;
    for (const SuspicionRecord& s : suspicions) {
      if (s.false_suspicion()) ++n;
    }
    return n;
  }
};

/// Transform ground truth into the detected (believed) schedule.
///
/// `num_nodes` bounds the monitored node set: nodes 1..num_nodes-1 are
/// subject to channel noise even when the truth schedule never touches them
/// (a healthy node can be falsely suspected); node 0's channel is reliable.
/// Slot-scope targets are monitored only when they appear in the truth
/// schedule.  With config.enabled() == false the truth schedule is returned
/// verbatim and no suspicions are recorded.
DetectionOutcome detect_failures(const FailureSchedule& truth,
                                 const FailureDetectorConfig& config,
                                 std::uint32_t num_nodes);

}  // namespace ssr
