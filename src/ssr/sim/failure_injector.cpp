#include "ssr/sim/failure_injector.h"

#include <utility>

#include "ssr/common/check.h"
#include "ssr/common/rng.h"
#include "ssr/sim/simulator.h"

namespace ssr {

FailureInjector::FailureInjector(FailureSchedule schedule)
    : schedule_(std::move(schedule)) {}

void FailureInjector::attach(Simulator& sim, FailureSink& sink) {
  SSR_CHECK_MSG(!attached_, "attach() may be called only once");
  attached_ = true;
  for (const FailureEvent& e : schedule_.events) {
    SSR_CHECK_MSG(e.fail_at >= 0.0, "failure time must be >= 0");
    SSR_CHECK_MSG(e.recover_at > e.fail_at,
                  "recovery must come strictly after the failure");
    // Capture by value: the schedule may be copied or destroyed after
    // attach(); only the sink reference must stay alive.
    FailureSink* s = &sink;
    // The kFailure band keeps same-instant ordering identical whether the
    // schedule is attached before any job is submitted (the closed harness)
    // or while arrivals stream in (the open stepping API): failures always
    // precede arrivals and internal events tied at the same timestamp.
    if (e.scope == FailureEvent::Scope::Node) {
      const NodeId node{e.id};
      sim.schedule_at(e.fail_at, EventBand::kFailure,
                      [s, node] { s->fail_node(node); });
      if (e.recover_at < kTimeInfinity) {
        sim.schedule_at(e.recover_at, EventBand::kFailure,
                        [s, node] { s->recover_node(node); });
      }
    } else {
      const SlotId slot{e.id};
      sim.schedule_at(e.fail_at, EventBand::kFailure,
                      [s, slot] { s->fail_slot(slot); });
      if (e.recover_at < kTimeInfinity) {
        sim.schedule_at(e.recover_at, EventBand::kFailure,
                        [s, slot] { s->recover_slot(slot); });
      }
    }
  }
}

FailureSchedule make_random_node_failures(const RandomFailureConfig& config) {
  SSR_CHECK_MSG(config.num_nodes >= 1, "need at least one node");
  SSR_CHECK_MSG(config.horizon > 0.0, "horizon must be positive");
  SSR_CHECK_MSG(config.min_downtime > 0.0 &&
                    config.max_downtime >= config.min_downtime,
                "downtime range must be positive and ordered");
  SSR_CHECK_MSG(
      config.permanent_fraction >= 0.0 && config.permanent_fraction <= 1.0,
      "permanent fraction must lie in [0, 1]");
  Rng rng(config.seed);
  FailureSchedule schedule;
  schedule.events.reserve(config.failures);
  for (std::uint32_t i = 0; i < config.failures; ++i) {
    FailureEvent e;
    e.scope = FailureEvent::Scope::Node;
    e.id = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(config.num_nodes) - 1));
    e.fail_at = rng.uniform(0.0, config.horizon);
    const SimDuration downtime =
        rng.uniform(config.min_downtime, config.max_downtime);
    const bool permanent = rng.bernoulli(config.permanent_fraction);
    // Node 0 always recovers: the surviving kernel that guarantees progress.
    e.recover_at =
        (permanent && e.id != 0) ? kTimeInfinity : e.fail_at + downtime;
    schedule.events.push_back(e);
  }
  return schedule;
}

}  // namespace ssr
