// Deterministic fault injection for the discrete-event cluster.
//
// A FailureSchedule is a plain list of (target, fail_at, recover_at) records;
// FailureInjector turns it into simulator events that call back into a
// FailureSink (the scheduling engine).  Because the schedule is data and the
// events ride the ordinary EventQueue, failure runs are exactly as
// reproducible as failure-free ones: the same schedule and seed give a
// bit-identical event stream, which is what the chaos and golden-replay
// suites pin.
//
// Semantics: failing an already-dead target and recovering an alive one are
// idempotent no-ops, so overlapping windows compose deterministically (the
// earliest recovery wins).  A recover_at of kTimeInfinity means the target
// never comes back.
#pragma once

#include <cstdint>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"

namespace ssr {

class Simulator;

/// Receiver of failure/recovery commands — implemented by the scheduling
/// engine.  Lives here (not in sched/) so the sim layer stays free of
/// scheduler headers while the injector can still drive an Engine.
class FailureSink {
 public:
  virtual ~FailureSink() = default;

  /// Every slot of the node dies: running tasks are lost, reservations are
  /// broken, resident outputs become unreachable.  Idempotent.
  virtual void fail_node(NodeId node) = 0;
  /// Every dead slot of the node comes back empty and cold.  Idempotent.
  virtual void recover_node(NodeId node) = 0;

  /// Single-slot variants (an executor crash rather than a machine loss).
  virtual void fail_slot(SlotId slot) = 0;
  virtual void recover_slot(SlotId slot) = 0;
};

/// One failure window on a node or a single slot.
struct FailureEvent {
  enum class Scope { Node, Slot };
  Scope scope = Scope::Node;
  std::uint32_t id = 0;  ///< NodeId::v or SlotId::v, per scope
  SimTime fail_at = 0.0;
  /// Absolute recovery time; kTimeInfinity = permanent failure.
  SimTime recover_at = kTimeInfinity;
};

/// An ordered list of failure windows.  Part of a scenario's inputs: two
/// runs with equal schedules (and equal everything else) are bit-identical.
struct FailureSchedule {
  std::vector<FailureEvent> events;

  bool empty() const { return events.empty(); }
};

/// Schedules every FailureEvent of a schedule onto a Simulator, directed at
/// a FailureSink.  The injector holds no state the engine depends on; it
/// only needs to outlive attach() (the callbacks capture the sink, not the
/// injector).
class FailureInjector {
 public:
  explicit FailureInjector(FailureSchedule schedule);

  /// Validate the schedule and enqueue its events.  Call once, before the
  /// simulation starts; `sink` must outlive the simulation.
  void attach(Simulator& sim, FailureSink& sink);

  const FailureSchedule& schedule() const { return schedule_; }

 private:
  FailureSchedule schedule_;
  bool attached_ = false;
};

/// Seeded random node-failure schedule for chaos testing: `failures` windows
/// with fail times uniform over [0, horizon) and downtimes uniform over
/// [min_downtime, max_downtime).  A `permanent_fraction` of the windows (by
/// Bernoulli draw) never recover; those are never placed on node 0, so a
/// kernel of capacity always survives and every job can still finish.
struct RandomFailureConfig {
  std::uint32_t num_nodes = 1;
  SimTime horizon = 100.0;
  std::uint32_t failures = 1;
  SimDuration min_downtime = 1.0;
  SimDuration max_downtime = 10.0;
  double permanent_fraction = 0.0;
  std::uint64_t seed = 1;
};

FailureSchedule make_random_node_failures(const RandomFailureConfig& config);

}  // namespace ssr
