// Event-queue construction knobs, split from event_queue.h so configuration
// structs (SchedConfig, RunOptions) can name the backend without pulling the
// queue's threading machinery into every translation unit.
#pragma once

#include <cstdint>

namespace ssr {

/// Storage backend behind the EventQueue API.  Both back ends implement the
/// identical total order (time, band, insertion sequence), so the choice is
/// purely a performance knob: pop order — and therefore every downstream
/// digest and trace — is bit-identical between them by construction.
enum class EventQueueBackend : std::uint8_t {
  /// Flat binary heap over one contiguous vector.  O(log n) push/pop, no
  /// tuning parameters; the reference backend.
  kBinaryHeap = 0,
  /// Calendar queue (Brown): time-bucketed, lazily sorted buckets with
  /// amortized O(1) push/pop at fig15-scale event densities; buckets resize
  /// to track the live event population.
  kCalendar = 1,
};

struct EventQueueOptions {
  EventQueueBackend backend = EventQueueBackend::kBinaryHeap;

  /// Number of per-node-group event lanes (shards).  1 keeps the classic
  /// single-lane queue with no worker threads.  With k > 1, events that
  /// carry a home node are routed to that node group's lane and one worker
  /// thread per lane performs deferred queue maintenance behind the lane's
  /// mutex; the driver merges lane heads deterministically, so the observed
  /// pop order is bit-identical for every shard count.
  std::uint32_t shards = 1;

  /// Cluster size used to map a home node to its lane; 0 routes everything
  /// to the central lane (equivalent to shards = 1 for ordering purposes,
  /// trivially, since ordering never depends on lane assignment at all).
  std::uint32_t num_nodes = 0;
};

}  // namespace ssr
