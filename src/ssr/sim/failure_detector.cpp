#include "ssr/sim/failure_detector.h"

#include <algorithm>
#include <map>
#include <utility>

#include "ssr/common/check.h"
#include "ssr/common/rng.h"

namespace ssr {
namespace {

/// Target key with deterministic ordering: all nodes (by id) before all
/// slots (by id) — the per-target Rng fork order depends on it.
struct TargetKey {
  FailureEvent::Scope scope;
  std::uint32_t id;

  bool operator<(const TargetKey& other) const {
    if (scope != other.scope) {
      return scope == FailureEvent::Scope::Node;
    }
    return id < other.id;
  }
};

/// Effective ground-truth down intervals of one target, [fail, recover),
/// non-overlapping and sorted.  Reproduces the injector's idempotent
/// semantics: failing an already-dead target and recovering an alive one are
/// no-ops, so overlapping windows merge and the earliest recovery wins.
std::vector<std::pair<SimTime, SimTime>> down_intervals(
    const std::vector<FailureEvent>& events) {
  struct Point {
    SimTime at;
    bool fail;
    std::size_t seq;  ///< schedule order, the same-instant tie-break
  };
  std::vector<Point> points;
  points.reserve(events.size() * 2);
  for (std::size_t i = 0; i < events.size(); ++i) {
    points.push_back({events[i].fail_at, true, 2 * i});
    if (events[i].recover_at < kTimeInfinity) {
      points.push_back({events[i].recover_at, false, 2 * i + 1});
    }
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  std::vector<std::pair<SimTime, SimTime>> intervals;
  bool dead = false;
  SimTime down_since = 0.0;
  for (const Point& p : points) {
    if (p.fail && !dead) {
      dead = true;
      down_since = p.at;
    } else if (!p.fail && dead) {
      dead = false;
      if (p.at > down_since) intervals.emplace_back(down_since, p.at);
    }
  }
  if (dead) intervals.emplace_back(down_since, kTimeInfinity);
  return intervals;
}

/// Scan one target's heartbeat timeline and append its suspicion windows.
void detect_target(const TargetKey& target,
                   const std::vector<std::pair<SimTime, SimTime>>& downs,
                   const FailureDetectorConfig& config, bool noisy, Rng rng,
                   SimTime truth_end, std::vector<SuspicionRecord>& out) {
  const SimDuration period = config.heartbeat_period;
  const SimTime noise_end = noisy ? config.noise_horizon : 0.0;
  // Beats matter while truth windows or channel noise can still change the
  // detector's mind; past this point an un-suspected target stays clean.
  const SimTime interest_end = std::max(truth_end, noise_end);

  std::size_t interval = 0;  ///< first down interval with recover > t
  std::uint32_t missed = 0;
  bool suspected = false;
  SuspicionRecord current;

  for (std::uint64_t k = 1;; ++k) {
    const SimTime t = static_cast<double>(k) * period;

    while (interval < downs.size() && downs[interval].second <= t) ++interval;
    const bool dead =
        interval < downs.size() && downs[interval].first <= t;

    // Past the last point of interest an alive, un-suspected target can
    // never change state again.  (Dead here means an unbounded interval: the
    // missed-beat counter keeps running until the suspicion closes it.)
    if (!suspected && !dead && t > interest_end) break;

    // Draw per beat (not per delivered beat) so a target's noise pattern is
    // a function of the beat index alone, independent of the truth windows.
    const bool lost =
        noisy && t <= noise_end && rng.bernoulli(config.heartbeat_loss);

    if (!dead && !lost) {
      if (suspected) {
        current.cleared_at = t;
        out.push_back(current);
        suspected = false;
      }
      missed = 0;
    } else {
      ++missed;
      if (!suspected && missed >= config.timeout_beats) {
        suspected = true;
        current = SuspicionRecord{};
        current.scope = target.scope;
        current.id = target.id;
        current.suspected_at = t;
        current.truth_fail_at = dead ? downs[interval].first : -1.0;
      }
      // A permanent truth failure never beats again: the suspicion window is
      // final, so close it as unbounded instead of looping forever.
      if (suspected && dead && downs[interval].second >= kTimeInfinity) {
        current.cleared_at = kTimeInfinity;
        out.push_back(current);
        suspected = false;
        break;
      }
    }
  }
}

}  // namespace

DetectionOutcome detect_failures(const FailureSchedule& truth,
                                 const FailureDetectorConfig& config,
                                 std::uint32_t num_nodes) {
  DetectionOutcome outcome;
  if (!config.enabled()) {
    // Instantaneous detection: the engine believes the truth the moment it
    // happens — PR5 semantics, byte-identical event streams.
    outcome.detected = truth;
    return outcome;
  }
  SSR_CHECK_MSG(config.timeout_beats >= 1, "timeout_beats must be >= 1");
  SSR_CHECK_MSG(
      config.heartbeat_loss >= 0.0 && config.heartbeat_loss < 1.0,
      "heartbeat_loss must lie in [0, 1) — a fully-lossy channel never "
      "clears a suspicion");
  SSR_CHECK_MSG(config.noise_horizon >= 0.0,
                "noise_horizon must be non-negative");

  // Monitored targets, in deterministic order.  Noisy channels can fabricate
  // suspicions on nodes the truth never touches, so with noise on, every
  // node except the reliable node 0 is monitored; without noise, only truth
  // targets can ever be suspected.
  std::map<TargetKey, std::vector<FailureEvent>> targets;
  SimTime truth_end = 0.0;
  for (const FailureEvent& e : truth.events) {
    targets[{e.scope, e.id}].push_back(e);
    truth_end = std::max(truth_end, e.fail_at);
    if (e.recover_at < kTimeInfinity) {
      truth_end = std::max(truth_end, e.recover_at);
    }
  }
  const bool noise_on =
      config.heartbeat_loss > 0.0 && config.noise_horizon > 0.0;
  if (noise_on) {
    for (std::uint32_t n = 1; n < num_nodes; ++n) {
      targets.try_emplace({FailureEvent::Scope::Node, n});
    }
  }

  // Auto-extend: with no explicit noise horizon, noise (if any) covers the
  // truth window, so lossy beats can only stretch or fabricate suspicions
  // while failures are actually in flight.
  FailureDetectorConfig effective = config;
  if (effective.noise_horizon == 0.0) effective.noise_horizon = truth_end;

  Rng root(config.seed);
  for (const auto& [key, events] : targets) {
    const bool noisy = config.heartbeat_loss > 0.0 &&
                       !(key.scope == FailureEvent::Scope::Node && key.id == 0);
    // Fork unconditionally so each target's stream is a function of its
    // position in the monitored set, not of which targets are noisy.
    Rng stream = root.fork();
    detect_target(key, down_intervals(events), effective, noisy,
                  std::move(stream), truth_end, outcome.suspicions);
  }

  std::sort(outcome.suspicions.begin(), outcome.suspicions.end(),
            [](const SuspicionRecord& a, const SuspicionRecord& b) {
              if (a.suspected_at != b.suspected_at) {
                return a.suspected_at < b.suspected_at;
              }
              if (a.scope != b.scope) {
                return a.scope == FailureEvent::Scope::Node;
              }
              return a.id < b.id;
            });
  outcome.detected.events.reserve(outcome.suspicions.size());
  for (const SuspicionRecord& s : outcome.suspicions) {
    FailureEvent e;
    e.scope = s.scope;
    e.id = s.id;
    e.fail_at = s.suspected_at;
    e.recover_at = s.cleared_at;
    outcome.detected.events.push_back(e);
  }
  return outcome;
}

}  // namespace ssr
