#include "ssr/sim/simulator.h"

#include <utility>

#include "ssr/common/check.h"

namespace ssr {

void Simulator::schedule_at(SimTime at, Callback fn) {
  SSR_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  queue_.push(at, std::move(fn));
}

void Simulator::schedule_after(SimDuration delay, Callback fn) {
  SSR_CHECK_MSG(delay >= 0.0, "negative delay");
  queue_.push(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  ++processed_;
  fn();
  return true;
}

void Simulator::run(std::size_t max_events) {
  while (step()) {
    if (max_events != 0 && processed_ >= max_events) {
      SSR_CHECK_MSG(queue_.empty(),
                    "simulation exceeded the configured event budget");
    }
  }
}

void Simulator::run_until(SimTime horizon) {
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    step();
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace ssr
