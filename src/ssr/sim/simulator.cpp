#include "ssr/sim/simulator.h"

#include <utility>

#include "ssr/common/check.h"

namespace ssr {

void Simulator::schedule_at(SimTime at, Callback fn) {
  schedule_at(at, EventBand::kInternal, std::move(fn));
}

void Simulator::schedule_at(SimTime at, EventBand band, Callback fn) {
  SSR_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  queue_.push(at, band, std::move(fn));
}

void Simulator::schedule_at(SimTime at, EventBand band, NodeId home,
                            Callback fn) {
  SSR_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  queue_.push(at, band, home, std::move(fn));
}

void Simulator::schedule_after(SimDuration delay, Callback fn) {
  SSR_CHECK_MSG(delay >= 0.0, "negative delay");
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_after(SimDuration delay, NodeId home, Callback fn) {
  SSR_CHECK_MSG(delay >= 0.0, "negative delay");
  queue_.push(now_ + delay, EventBand::kInternal, home, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  now_ = at;
  ++processed_;
  fn();
  return true;
}

bool Simulator::step_until(SimTime horizon) {
  auto ev = queue_.pop_if_at_or_before(horizon);
  if (!ev) return false;
  now_ = ev->first;
  ++processed_;
  ev->second();
  return true;
}

void Simulator::run(std::size_t max_events) {
  while (step()) {
    if (max_events != 0 && processed_ >= max_events) {
      SSR_CHECK_MSG(queue_.empty(),
                    "simulation exceeded the configured event budget");
    }
  }
}

void Simulator::run_until(SimTime horizon) {
  SSR_CHECK_MSG(horizon >= now_, "cannot advance the clock into the past");
  while (step_until(horizon)) {
  }
  if (now_ < horizon) now_ = horizon;
}

}  // namespace ssr
