#include "ssr/sim/event_queue.h"

#include <utility>

#include "ssr/common/check.h"

namespace ssr {

void EventQueue::push(SimTime at, Callback fn) {
  SSR_CHECK_MSG(fn != nullptr, "event callback required");
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinity : heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  SSR_CHECK_MSG(!heap_.empty(), "pop from empty event queue");
  // priority_queue::top() is const&; the move is safe because we pop
  // immediately after and never observe the moved-from element.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return {ev.at, std::move(ev.fn)};
}

}  // namespace ssr
