#include "ssr/sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {

void EventQueue::push(SimTime at, Callback fn) {
  push(at, EventBand::kInternal, std::move(fn));
}

void EventQueue::push(SimTime at, EventBand band, Callback fn) {
  SSR_CHECK_MSG(static_cast<bool>(fn), "event callback required");
  heap_.push_back(Event{at, band, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinity : heap_.front().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  SSR_CHECK_MSG(!heap_.empty(), "pop from empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return {ev.at, std::move(ev.fn)};
}

std::optional<std::pair<SimTime, EventQueue::Callback>>
EventQueue::pop_if_at_or_before(SimTime horizon) {
  if (heap_.empty() || heap_.front().at > horizon) return std::nullopt;
  return pop();
}

}  // namespace ssr
