#include "ssr/sim/event_queue.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "ssr/common/check.h"

namespace ssr {

namespace {

// Calendar-queue tuning.  All constants are performance knobs: the total
// order popped out is independent of every one of them (the shard
// determinism and heap-vs-calendar differential suites enforce that).
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = 1u << 16;
constexpr double kFarYears = 64.0;  ///< bucket horizon, in years, per rebuild
/// Safety cap on the relative bucket index; anything further out is overflow
/// regardless of far_floor (keeps float->int conversions in-range even for
/// adversarial time values).
constexpr double kMaxRelIndex = 4.0e15;
/// Driver drains the heap-lane staging buffer itself past this size, so a
/// stalled worker can never grow it without bound.
constexpr std::size_t kStagingFlushLimit = 4096;

}  // namespace

EventQueue::EventQueue(const EventQueueOptions& opts) : opts_(opts) {
  if (opts_.shards == 0) opts_.shards = 1;
  const std::size_t nlanes =
      opts_.shards > 1 ? static_cast<std::size_t>(opts_.shards) + 1 : 1;
  lanes_.reserve(nlanes);
  for (std::size_t i = 0; i < nlanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>());
    if (opts_.backend == EventQueueBackend::kCalendar) {
      lanes_.back()->buckets.resize(kMinBuckets);
    }
  }
  // One worker per shard lane; the central lane (index 0: arrivals, failure
  // schedules, locality retries) stays driver-maintained — it carries a
  // small fraction of the traffic, and giving it a worker would only add a
  // thread to contend with.
  if (opts_.shards > 1) {
    workers_.reserve(opts_.shards);
    for (std::size_t i = 1; i < nlanes; ++i) {
      Lane* ln = lanes_[i].get();
      ln->staged_mode = opts_.backend == EventQueueBackend::kBinaryHeap;
      workers_.emplace_back([this, ln] { worker_main(*ln); });
    }
  }
}

EventQueue::~EventQueue() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& ln : lanes_) {
    {
      // Empty critical section: pairs the flag store with the workers'
      // predicate check so no worker can miss the final notify.
      std::scoped_lock lk(ln->mu);
    }
    ln->cv.notify_all();
  }
  for (std::thread& t : workers_) t.join();
}

// --- Push -------------------------------------------------------------------

void EventQueue::push(SimTime at, Callback fn) {
  push(at, EventBand::kInternal, NodeId{0}, std::move(fn));
}

void EventQueue::push(SimTime at, EventBand band, Callback fn) {
  push(at, band, NodeId{0}, std::move(fn));
}

void EventQueue::push(SimTime at, EventBand band, NodeId home, Callback fn) {
  SSR_CHECK_MSG(static_cast<bool>(fn), "event callback required");
  // The sequence number is global across lanes and assigned on the driver
  // thread, which is the whole determinism argument: the merged order
  // (at, band, seq) is a total order independent of lane assignment.
  Event ev{at, band, next_seq_++, std::move(fn)};
  lane_push(lane_for(home), std::move(ev));
  ++size_;
}

EventQueue::Lane& EventQueue::lane_for(NodeId home) {
  if (lanes_.size() == 1) return *lanes_[0];
  if (opts_.num_nodes == 0 || home.v >= opts_.num_nodes) return *lanes_[0];
  // Contiguous node groups: nodes [g*n/k, (g+1)*n/k) share lane g+1.
  const std::uint64_t g = static_cast<std::uint64_t>(home.v) *
                          opts_.shards / opts_.num_nodes;
  return *lanes_[static_cast<std::size_t>(g) + 1];
}

void EventQueue::lane_push(Lane& ln, Event ev) {
  std::scoped_lock lk(ln.mu);
  if (opts_.backend == EventQueueBackend::kCalendar) {
    cal_insert(ln, std::move(ev));
    return;
  }
  if (!ln.staged_mode) {
    ln.heap.push_back(std::move(ev));
    std::push_heap(ln.heap.begin(), ln.heap.end(), Later{});
    return;
  }
  const EventKey k = key_of(ev);
  ln.staging.push_back(std::move(ev));
  if (!ln.staged_min_valid || key_earlier(k, ln.staged_min)) {
    ln.staged_min = k;
    ln.staged_min_valid = true;
  }
  if (ln.staging.size() >= kStagingFlushLimit) {
    for (Event& e : ln.staging) {
      ln.heap.push_back(std::move(e));
      std::push_heap(ln.heap.begin(), ln.heap.end(), Later{});
    }
    ln.staging.clear();
    ln.staged_min_valid = false;
  }
}

// --- Peek / pop -------------------------------------------------------------

SimTime EventQueue::next_time() const {
  SimTime best = kTimeInfinity;
  bool have = false;
  for (const auto& ln : lanes_) {
    const std::optional<EventKey> k = lane_min_key(*ln);
    if (k.has_value() && (!have || k->at < best)) {
      best = k->at;
      have = true;
    }
  }
  return have ? best : kTimeInfinity;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
  SSR_CHECK_MSG(size_ != 0, "pop from empty event queue");
  std::size_t best_lane = lanes_.size();
  EventKey best{};
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const std::optional<EventKey> k = lane_min_key(*lanes_[i]);
    if (k.has_value() &&
        (best_lane == lanes_.size() || key_earlier(*k, best))) {
      best = *k;
      best_lane = i;
    }
  }
  SSR_CHECK_MSG(best_lane != lanes_.size(), "event count out of sync");
  Event ev = lane_extract_min(*lanes_[best_lane]);
  --size_;
  return {ev.at, std::move(ev.fn)};
}

std::optional<std::pair<SimTime, EventQueue::Callback>>
EventQueue::pop_if_at_or_before(SimTime horizon) {
  if (size_ == 0 || next_time() > horizon) return std::nullopt;
  return pop();
}

void EventQueue::note_spacing_hint(SimDuration spacing) {
  if (!(spacing > 0.0)) return;
  double cur = spacing_hint_.load(std::memory_order_relaxed);
  if (cur == 0.0 || spacing < cur) {
    spacing_hint_.store(spacing, std::memory_order_relaxed);
  }
}

// --- Per-lane minimum -------------------------------------------------------

std::optional<EventQueue::EventKey> EventQueue::lane_min_key(Lane& ln) const {
  std::scoped_lock lk(ln.mu);
  if (opts_.backend == EventQueueBackend::kBinaryHeap) {
    std::optional<EventKey> k;
    if (!ln.heap.empty()) k = key_of(ln.heap.front());
    if (ln.staged_min_valid &&
        (!k.has_value() || key_earlier(ln.staged_min, *k))) {
      k = ln.staged_min;
    }
    return k;
  }
  if (ln.count == 0) {
    if (ln.overflow.empty()) return std::nullopt;
    bool any_finite = false;
    for (const Event& e : ln.overflow) {
      if (e.at < kTimeInfinity) {
        any_finite = true;
        break;
      }
    }
    if (any_finite) {
      // The bucket array drained down to the far-future population: rebuild
      // the calendar around it (new origin/width), pulling the near ones in.
      cal_rebuild(ln, ln.buckets.size());
    } else {
      if (!ln.overflow_sorted) {
        std::sort(ln.overflow.begin(), ln.overflow.end(), DescKey{});
        ln.overflow_sorted = true;
      }
      return key_of(ln.overflow.back());
    }
  }
  cal_locate_min(ln);
  return ln.min_key;
}

EventQueue::Event EventQueue::lane_extract_min(Lane& ln) {
  std::scoped_lock lk(ln.mu);
  if (opts_.backend == EventQueueBackend::kBinaryHeap) {
    const bool staged_wins =
        ln.staged_min_valid &&
        (ln.heap.empty() || key_earlier(ln.staged_min, key_of(ln.heap.front())));
    if (staged_wins) {
      std::size_t idx = ln.staging.size();
      for (std::size_t i = 0; i < ln.staging.size(); ++i) {
        if (ln.staging[i].seq == ln.staged_min.seq) {
          idx = i;
          break;
        }
      }
      SSR_CHECK_MSG(idx != ln.staging.size(), "staged minimum out of sync");
      Event ev = std::move(ln.staging[idx]);
      ln.staging[idx] = std::move(ln.staging.back());
      ln.staging.pop_back();
      ln.staged_min_valid = false;
      for (const Event& e : ln.staging) {
        const EventKey k = key_of(e);
        if (!ln.staged_min_valid || key_earlier(k, ln.staged_min)) {
          ln.staged_min = k;
          ln.staged_min_valid = true;
        }
      }
      return ev;
    }
    SSR_CHECK_MSG(!ln.heap.empty(), "pop from empty event lane");
    std::pop_heap(ln.heap.begin(), ln.heap.end(), Later{});
    Event ev = std::move(ln.heap.back());
    ln.heap.pop_back();
    return ev;
  }

  // Calendar.
  if (ln.count == 0) {
    SSR_CHECK_MSG(!ln.overflow.empty(), "pop from empty event lane");
    bool any_finite = false;
    for (const Event& e : ln.overflow) {
      if (e.at < kTimeInfinity) {
        any_finite = true;
        break;
      }
    }
    if (!any_finite) {
      if (!ln.overflow_sorted) {
        std::sort(ln.overflow.begin(), ln.overflow.end(), DescKey{});
        ln.overflow_sorted = true;
      }
      Event ev = std::move(ln.overflow.back());
      ln.overflow.pop_back();
      return ev;
    }
    cal_rebuild(ln, ln.buckets.size());
  }
  cal_locate_min(ln);
  Bucket& b = ln.buckets[ln.min_bucket];
  sort_bucket(b);
  Event ev = std::move(b.events.back());
  b.events.pop_back();
  --ln.count;
  ln.min_valid = false;
  if (ln.buckets.size() > kMinBuckets && ln.count < ln.buckets.size() / 4) {
    cal_rebuild(ln, ln.buckets.size() / 2);
  } else if (!b.events.empty() &&
             rel_index(ln, b.events.back().at) <= ln.cur_abs) {
    // The same bucket still holds the lane minimum (the cursor is parked on
    // it); keep the cache warm so consecutive pops skip the scan.
    ln.min_valid = true;
    ln.min_key = key_of(b.events.back());
    // min_bucket unchanged.
  }
  return ev;
}

// --- Calendar internals (lane mutex held) -----------------------------------

void EventQueue::sort_bucket(Bucket& b) {
  if (!b.sorted) {
    std::sort(b.events.begin(), b.events.end(), DescKey{});
    b.sorted = true;
  }
}

std::int64_t EventQueue::rel_index(const Lane& ln, double at) {
  return static_cast<std::int64_t>(std::floor((at - ln.origin) / ln.width));
}

std::size_t EventQueue::bucket_of(const Lane& ln, std::int64_t abs_index) {
  // Power-of-two size: two's-complement & is a correct mod for negatives.
  return static_cast<std::size_t>(
      abs_index & static_cast<std::int64_t>(ln.buckets.size() - 1));
}

void EventQueue::cal_insert(Lane& ln, Event ev) {
  const double rel = (ev.at - ln.origin) / ln.width;
  if (!(ev.at < ln.far_floor) || rel >= kMaxRelIndex) {
    // Far-future or non-finite: keep it out of the bucket index arithmetic.
    // Every bucket event is earlier than every overflow event, so overflow
    // only participates once the buckets drain (and a rebuild re-homes it).
    if (!ln.overflow.empty() && ln.overflow_sorted &&
        !key_earlier(key_of(ev), key_of(ln.overflow.back()))) {
      ln.overflow_sorted = false;
    }
    ln.overflow.push_back(std::move(ev));
    if (ln.overflow.size() <= 1) ln.overflow_sorted = true;
    return;
  }
  if (rel <= -kMaxRelIndex) {
    // Extreme past relative to the current origin/width (tiny width, event
    // far before the origin): the index arithmetic would overflow.  Park it
    // in overflow and rebuild immediately — the rebuild recomputes origin as
    // the pool minimum, so the re-insert lands at rel 0.  Never recurses:
    // rebuild-driven inserts always see rel >= 0.
    ln.overflow.push_back(std::move(ev));
    ln.overflow_sorted = ln.overflow.size() <= 1;
    cal_rebuild(ln, ln.buckets.size());
    return;
  }
  const std::int64_t relb = static_cast<std::int64_t>(std::floor(rel));
  Bucket& b = ln.buckets[bucket_of(ln, relb)];
  if (!b.events.empty() && b.sorted &&
      !key_earlier(key_of(ev), key_of(b.events.back()))) {
    b.sorted = false;
  }
  const EventKey k = key_of(ev);
  b.events.push_back(std::move(ev));
  if (b.events.size() == 1) b.sorted = true;
  ++ln.count;

  if (ln.count == 1) {
    // First bucket event: park the cursor on it.
    ln.cur_abs = relb;
  } else if (relb < ln.cur_abs) {
    // Earlier than the cursor's window: a classic calendar queue moves the
    // dequeue position back, otherwise the forward year scan would walk
    // right past this event.
    ln.cur_abs = relb;
  }
  if (ln.min_valid && key_earlier(k, ln.min_key)) ln.min_valid = false;
  if (ln.count > 2 * ln.buckets.size() && ln.buckets.size() < kMaxBuckets) {
    cal_rebuild(ln, ln.buckets.size() * 2);
  }
}

void EventQueue::cal_locate_min(Lane& ln) {
  if (ln.min_valid) return;
  SSR_CHECK_MSG(ln.count != 0, "locate_min on empty calendar");
  const std::size_t n = ln.buckets.size();
  // Year scan: walk buckets from the cursor; the first event whose own
  // rel_index is inside the cursor's advancing window is the lane minimum
  // (events of later years fail the index check and wait for the wrap).
  for (std::size_t steps = 0; steps <= n; ++steps) {
    Bucket& b = ln.buckets[bucket_of(ln, ln.cur_abs)];
    if (!b.events.empty()) {
      sort_bucket(b);
      if (rel_index(ln, b.events.back().at) <= ln.cur_abs) {
        ln.min_valid = true;
        ln.min_key = key_of(b.events.back());
        ln.min_bucket = bucket_of(ln, ln.cur_abs);
        return;
      }
    }
    ++ln.cur_abs;
  }
  // A whole year was empty: jump straight to the global minimum (sparse
  // population / large gap).  Linear min per bucket, no sorting.
  std::size_t best_bucket = n;
  EventKey best{};
  for (std::size_t i = 0; i < n; ++i) {
    for (const Event& e : ln.buckets[i].events) {
      const EventKey k = key_of(e);
      if (best_bucket == n || key_earlier(k, best)) {
        best = k;
        best_bucket = i;
      }
    }
  }
  SSR_CHECK_MSG(best_bucket != n, "calendar count out of sync");
  ln.min_valid = true;
  ln.min_key = best;
  ln.min_bucket = best_bucket;
  ln.cur_abs = rel_index(ln, best.at);
}

void EventQueue::cal_rebuild(Lane& ln, std::size_t nbuckets) {
  nbuckets = std::max(kMinBuckets, std::min(kMaxBuckets, nbuckets));
  std::vector<Event> pool;
  pool.reserve(ln.count + ln.overflow.size());
  for (Bucket& b : ln.buckets) {
    for (Event& e : b.events) pool.push_back(std::move(e));
    b.events.clear();
    b.sorted = true;
  }
  std::vector<Event> far;
  far.reserve(ln.overflow.size());
  for (Event& e : ln.overflow) {
    if (e.at < kTimeInfinity) {
      pool.push_back(std::move(e));
    } else {
      far.push_back(std::move(e));
    }
  }
  ln.overflow = std::move(far);
  ln.overflow_sorted = ln.overflow.size() <= 1;
  ln.count = 0;
  ln.min_valid = false;
  ln.buckets.clear();
  ln.buckets.resize(nbuckets);

  if (pool.empty()) {
    ln.origin = 0.0;
    ln.width = 1.0;
    ln.far_floor = kTimeInfinity;
    ln.cur_abs = 0;
    return;
  }

  double lo = pool.front().at;
  double hi = pool.front().at;
  for (const Event& e : pool) {
    lo = std::min(lo, e.at);
    hi = std::max(hi, e.at);
  }
  // Width targets ~3 events per occupied bucket; the lower clamp keeps the
  // relative bucket index within exact int64 range even for extreme
  // timestamps, the upper guard keeps the arithmetic finite.
  const double span = hi - lo;
  double width = span > 0.0
                     ? 3.0 * span / static_cast<double>(pool.size())
                     : 1.0;
  width = std::max(width, (std::abs(hi) + 1.0) * 1e-12);
  if (!(width < kTimeInfinity)) width = 1.0;
  ln.width = width;
  ln.origin = lo;
  ln.far_floor =
      lo + width * static_cast<double>(nbuckets) * kFarYears;
  ln.cur_abs = 0;
  for (Event& e : pool) cal_insert(ln, std::move(e));
  // cal_insert parked the cursor on the earliest event via the regression
  // rule; nothing else to fix up.
}

// --- Worker threads ---------------------------------------------------------

bool EventQueue::do_maintenance(Lane& ln) {
  if (ln.staged_mode) {
    if (ln.staging.empty()) return false;
    for (Event& e : ln.staging) {
      ln.heap.push_back(std::move(e));
      std::push_heap(ln.heap.begin(), ln.heap.end(), Later{});
    }
    ln.staging.clear();
    ln.staged_min_valid = false;
    return true;
  }
  if (opts_.backend != EventQueueBackend::kCalendar) return false;
  // Presort dirty buckets inside the conservative-lookahead window past the
  // driver cursor.  The window is derived from the engine's event-spacing
  // hint (minimum drawn task duration): completion events always land at
  // least that far beyond "now", so buckets inside the window can only
  // receive the rare near-term event (retries, expiries) and sorting them is
  // almost never wasted.  Correctness never depends on this: sorting is
  // idempotent and the driver sorts on demand anyway.
  const std::size_t n = ln.buckets.size();
  const double hint = spacing_hint_.load(std::memory_order_relaxed);
  std::size_t window = n / 4;
  if (hint > 0.0 && ln.width > 0.0) {
    const double w = hint / ln.width;
    if (w < static_cast<double>(window)) {
      window = static_cast<std::size_t>(w);
    }
  }
  window = std::max<std::size_t>(window, 1);
  window = std::min(window, n - 1);
  const std::size_t cur = bucket_of(ln, ln.cur_abs);
  for (std::size_t j = 1; j <= window; ++j) {
    Bucket& b = ln.buckets[(cur + j) & (n - 1)];
    if (!b.sorted && b.events.size() > 1) {
      sort_bucket(b);
      return true;  // one bucket per lock hold; yield to the driver
    }
  }
  if (!ln.overflow_sorted && ln.overflow.size() > 1) {
    std::sort(ln.overflow.begin(), ln.overflow.end(), DescKey{});
    ln.overflow_sorted = true;
    return true;
  }
  return false;
}

void EventQueue::worker_main(Lane& ln) {
  std::unique_lock<std::mutex> lk(ln.mu);
  while (!shutdown_.load(std::memory_order_acquire)) {
    if (!do_maintenance(ln)) {
      ln.cv.wait_for(lk, std::chrono::microseconds(200));
    }
  }
}

}  // namespace ssr
