// Cluster model: nodes, compute slots, slot state machine, and the
// bookkeeping that the paper's mechanism rests on — which stage outputs are
// resident on which slot (data locality / warm executor) and how much time
// each slot spends busy versus reserved-but-idle (utilization accounting).
//
// The model corresponds to the paper's Spark deployment: each node hosts a
// fixed number of executors ("slots"); one slot runs one task at a time.  A
// slot is Idle, Busy, ReservedIdle, or Dead.  ReservedIdle is the state
// introduced by speculative slot reservation: the slot is empty but withheld
// from jobs whose priority does not exceed the reservation's.  Dead models a
// failed executor/machine (the fault-injection layer): the slot holds no
// task, no reservation, and no resident outputs, and is absent from every
// free-slot index until it recovers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ssr/common/check.h"
#include "ssr/common/ids.h"
#include "ssr/common/resources.h"
#include "ssr/common/time.h"

namespace ssr {

enum class SlotState { Idle, Busy, ReservedIdle, Dead };

/// A reservation held on a ReservedIdle slot (Algorithm 1 of the paper).
struct Reservation {
  JobId job;                         ///< Reserving job; its tasks always pass
                                     ///< the approval check.
  int priority = 0;                  ///< Inherited from the reserving job.
  SimTime deadline = kTimeInfinity;  ///< Absolute expiry (Sec. IV-B knob).
  StageId for_stage;                 ///< Downstream stage being served.
  std::uint64_t token = 0;           ///< Generation counter; expiry events
                                     ///< validate it before releasing.
};

/// One compute slot (a Spark executor).  State transitions are performed by
/// Cluster so that time accounting and the free-slot indexes stay coherent.
class Slot {
 public:
  Slot(SlotId id, NodeId node, Resources capacity = {})
      : id_(id), node_(node), capacity_(capacity) {}

  SlotId id() const { return id_; }
  NodeId node() const { return node_; }
  SlotState state() const { return state_; }

  /// Resource capacity (Sec. III-C); homogeneous {1, 1} by default.
  const Resources& capacity() const { return capacity_; }

  const std::optional<Reservation>& reservation() const { return reservation_; }
  const std::optional<TaskId>& running_task() const { return running_task_; }

  /// True if the output data of `stage` is resident on this slot, i.e. a
  /// task of `stage` completed here.  Downstream tasks scheduled on such a
  /// slot run at full speed; elsewhere they pay the locality penalty.
  bool has_output(StageId stage) const {
    return std::binary_search(resident_outputs_.begin(),
                              resident_outputs_.end(),
                              std::pair{stage.job.v, stage.index});
  }

  double busy_time() const { return busy_time_; }
  double reserved_idle_time() const { return reserved_idle_time_; }
  double dead_time() const { return dead_time_; }

 private:
  friend class Cluster;

  SlotId id_;
  NodeId node_;
  Resources capacity_;
  SlotState state_ = SlotState::Idle;
  std::optional<Reservation> reservation_;
  std::optional<TaskId> running_task_;
  /// Resident stage outputs as a sorted, unique (job raw id, stage index)
  /// vector.  A slot holds a handful of entries at any time, so the dense
  /// layout beats the former per-job hash-map-of-hash-sets on every
  /// operation (binary-search lookup, ranged erase per finished job) and,
  /// unlike it, iterates in deterministic order for free.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> resident_outputs_;

  SimTime state_since_ = kTimeZero;
  double busy_time_ = 0.0;
  double reserved_idle_time_ = 0.0;
  double dead_time_ = 0.0;
};

/// The whole cluster.  Owns all slots, performs state transitions, maintains
/// deterministic (id-ordered) indexes of idle and reserved-idle slots, and
/// accumulates utilization statistics per slot and per reserving job.
class Cluster {
 public:
  /// Homogeneous cluster: every slot has capacity {1, 1}.
  Cluster(std::uint32_t num_nodes, std::uint32_t slots_per_node);

  /// Heterogeneous cluster: node_slots[i] lists the capacities of node i's
  /// slots (Sec. III-C scenarios, e.g. big-memory slots on some nodes).
  explicit Cluster(const std::vector<std::vector<Resources>>& node_slots);

  std::uint32_t num_nodes() const { return num_nodes_; }
  std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  const Slot& slot(SlotId id) const { return slots_.at(id.v); }

  /// The slots hosted on `node`, in ascending id order (fixed at
  /// construction); node-level failure iterates this.
  const std::vector<SlotId>& slots_of_node(NodeId node) const {
    return slots_of_node_.at(node.v);
  }

  /// Slots currently Idle (unreserved), ordered by id for determinism.
  const std::set<SlotId>& idle_slots() const { return idle_; }

  /// Slots currently ReservedIdle, ordered by id.
  const std::set<SlotId>& reserved_idle_slots() const { return reserved_idle_; }

  // --- Incremental scheduler indexes --------------------------------------
  // Maintained on every state transition so the scheduling hot path never
  // rescans all slots.  Each index preserves id-ordered iteration, keeping
  // placement decisions bit-identical with the full-scan formulation.

  /// ReservedIdle slots whose reservation belongs to `job`, ordered by id.
  /// (The id-ordered subsequence of reserved_idle_slots() with that job.)
  const std::set<SlotId>& reserved_idle_slots_of(JobId job) const;

  /// ReservedIdle slots bucketed by reservation priority (each bucket
  /// id-ordered).  Lets priority-aware policies enumerate only the buckets a
  /// requester could override instead of scanning every reservation.
  const std::map<int, std::set<SlotId>>& reserved_idle_by_priority() const {
    return reserved_idle_by_priority_;
  }

  /// True if at least one slot's capacity covers `demand`.  O(#distinct
  /// capacity classes) — slot capacities are fixed at construction, so the
  /// distinct set is precomputed once (a single entry for homogeneous
  /// clusters) instead of scanning every slot per query.
  bool fits_any_slot(const Resources& demand) const;

  // --- State transitions -------------------------------------------------

  /// Idle|ReservedIdle -> Busy.  Starting a task on a reserved slot consumes
  /// the reservation (the caller's approval logic decides whether that is
  /// legal; the cluster only records the transition).
  void start_task(SlotId id, TaskId task, SimTime now);

  /// Busy -> Idle; records the completed task's stage output as resident.
  void finish_task(SlotId id, SimTime now);

  /// Busy -> Idle without recording output (straggler copy or original that
  /// lost the race and was killed mid-flight).
  void kill_task(SlotId id, SimTime now);

  /// Idle -> ReservedIdle.  Returns the generation token the expiry event
  /// must present to release_if_current().
  std::uint64_t reserve(SlotId id, Reservation reservation, SimTime now);

  /// ReservedIdle -> Idle (deadline expiry, job completion, override).
  void release_reservation(SlotId id, SimTime now);

  /// Releases only if the slot is still ReservedIdle under the same token.
  /// Safe to call from a stale deadline event; returns true if released.
  bool release_if_current(SlotId id, std::uint64_t token, SimTime now);

  /// Idle -> Dead (failure injection).  The caller must have drained the
  /// slot first: running tasks killed, reservations released.
  void fail_slot(SlotId id, SimTime now);

  /// Dead -> Idle.  The slot returns empty and cold (its resident outputs
  /// were taken at failure time).
  void recover_slot(SlotId id, SimTime now);

  /// Drop all resident outputs belonging to `job` (job finished; its data is
  /// no longer useful and the sets would otherwise grow without bound).
  void forget_job_outputs(JobId job);

  /// Remove and return every stage whose output was resident on `id`, in
  /// ascending (job, index) order.  Failure handling uses the result to
  /// decide which producer stages must re-run.
  std::vector<StageId> take_resident_outputs(SlotId id);

  // --- Accounting ---------------------------------------------------------

  /// Flush per-slot accounting up to `now` (call before reading totals).
  void settle(SimTime now);

  double total_busy_time() const;
  double total_reserved_idle_time() const;
  /// Slot-seconds spent Dead (excluded from utilization denominators by
  /// callers that account for failures).
  double total_dead_time() const;

  /// Reserved-idle seconds attributable to reservations held by `job`.
  double reserved_idle_time_of(JobId job) const;

  /// Fraction of slot-seconds spent busy over [0, now]; call settle() first.
  double utilization(SimTime now) const;

 private:
  Slot& mutable_slot(SlotId id) { return slots_.at(id.v); }
  void accrue(Slot& s, SimTime now);
  void record_capacity(const Resources& capacity);
  void index_reservation(SlotId id, const Reservation& r);
  void unindex_reservation(SlotId id, const Reservation& r);

  std::uint32_t num_nodes_;
  std::vector<Slot> slots_;
  /// Per-node slot lists (ascending id), fixed at construction.
  std::vector<std::vector<SlotId>> slots_of_node_;
  std::set<SlotId> idle_;
  std::set<SlotId> reserved_idle_;
  /// Secondary views of reserved_idle_, keyed by reserving job / priority.
  /// Entries are erased when their set drains so the maps stay bounded by
  /// the number of live reservations, not of jobs ever seen.
  std::map<JobId, std::set<SlotId>> reserved_idle_of_job_;
  std::map<int, std::set<SlotId>> reserved_idle_by_priority_;
  /// Slots currently holding resident outputs of each job, indexed densely
  /// by job raw id (jobs are dense small integers); each entry is a sorted,
  /// unique slot vector.  Makes forget_job_outputs proportional to the
  /// job's footprint with no hashing on the completion hot path.
  std::vector<std::vector<SlotId>> output_slots_of_job_;
  /// Distinct slot capacities (fixed at construction).
  std::vector<Resources> distinct_capacities_;
  std::unordered_map<JobId, double> reserved_idle_by_job_;
  std::uint64_t next_token_ = 1;
};

}  // namespace ssr
