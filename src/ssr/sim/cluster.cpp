#include "ssr/sim/cluster.h"

#include <algorithm>
#include <utility>

namespace ssr {

Cluster::Cluster(std::uint32_t num_nodes, std::uint32_t slots_per_node)
    : num_nodes_(num_nodes) {
  SSR_CHECK_MSG(num_nodes > 0 && slots_per_node > 0,
                "cluster must have at least one slot");
  slots_.reserve(static_cast<std::size_t>(num_nodes) * slots_per_node);
  slots_of_node_.resize(num_nodes);
  std::uint32_t next_slot = 0;
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (std::uint32_t s = 0; s < slots_per_node; ++s) {
      slots_.emplace_back(SlotId{next_slot}, NodeId{n});
      record_capacity(slots_.back().capacity());
      idle_.insert(SlotId{next_slot});
      slots_of_node_[n].push_back(SlotId{next_slot});
      ++next_slot;
    }
  }
}

Cluster::Cluster(const std::vector<std::vector<Resources>>& node_slots)
    : num_nodes_(static_cast<std::uint32_t>(node_slots.size())) {
  SSR_CHECK_MSG(!node_slots.empty(), "cluster must have at least one node");
  slots_of_node_.resize(node_slots.size());
  std::uint32_t next_slot = 0;
  for (std::uint32_t n = 0; n < node_slots.size(); ++n) {
    SSR_CHECK_MSG(!node_slots[n].empty(), "node must have at least one slot");
    for (const Resources& cap : node_slots[n]) {
      SSR_CHECK_MSG(cap.cpu > 0.0 && cap.memory > 0.0,
                    "slot capacity must be positive");
      slots_.emplace_back(SlotId{next_slot}, NodeId{n}, cap);
      record_capacity(cap);
      idle_.insert(SlotId{next_slot});
      slots_of_node_[n].push_back(SlotId{next_slot});
      ++next_slot;
    }
  }
}

void Cluster::record_capacity(const Resources& capacity) {
  if (std::find(distinct_capacities_.begin(), distinct_capacities_.end(),
                capacity) == distinct_capacities_.end()) {
    distinct_capacities_.push_back(capacity);
  }
}

bool Cluster::fits_any_slot(const Resources& demand) const {
  for (const Resources& cap : distinct_capacities_) {
    if (demand.fits_in(cap)) return true;
  }
  return false;
}

const std::set<SlotId>& Cluster::reserved_idle_slots_of(JobId job) const {
  static const std::set<SlotId> kEmpty;
  auto it = reserved_idle_of_job_.find(job);
  return it == reserved_idle_of_job_.end() ? kEmpty : it->second;
}

void Cluster::index_reservation(SlotId id, const Reservation& r) {
  reserved_idle_.insert(id);
  reserved_idle_of_job_[r.job].insert(id);
  reserved_idle_by_priority_[r.priority].insert(id);
}

void Cluster::unindex_reservation(SlotId id, const Reservation& r) {
  reserved_idle_.erase(id);
  auto job_it = reserved_idle_of_job_.find(r.job);
  SSR_CHECK_MSG(job_it != reserved_idle_of_job_.end(),
                "reservation missing from the per-job index");
  job_it->second.erase(id);
  if (job_it->second.empty()) reserved_idle_of_job_.erase(job_it);
  auto prio_it = reserved_idle_by_priority_.find(r.priority);
  SSR_CHECK_MSG(prio_it != reserved_idle_by_priority_.end(),
                "reservation missing from the priority index");
  prio_it->second.erase(id);
  if (prio_it->second.empty()) reserved_idle_by_priority_.erase(prio_it);
}

void Cluster::accrue(Slot& s, SimTime now) {
  SSR_CHECK_MSG(now >= s.state_since_, "time moved backwards");
  const double elapsed = now - s.state_since_;
  switch (s.state_) {
    case SlotState::Busy:
      s.busy_time_ += elapsed;
      break;
    case SlotState::ReservedIdle:
      s.reserved_idle_time_ += elapsed;
      reserved_idle_by_job_[s.reservation_->job] += elapsed;
      break;
    case SlotState::Dead:
      s.dead_time_ += elapsed;
      break;
    case SlotState::Idle:
      break;
  }
  s.state_since_ = now;
}

void Cluster::start_task(SlotId id, TaskId task, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ != SlotState::Busy, "slot already running a task");
  accrue(s, now);
  if (s.state_ == SlotState::Idle) {
    idle_.erase(id);
  } else {
    unindex_reservation(id, *s.reservation_);
    s.reservation_.reset();
  }
  s.state_ = SlotState::Busy;
  s.running_task_ = task;
}

void Cluster::finish_task(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Busy, "no task running on slot");
  accrue(s, now);
  const StageId finished = s.running_task_->stage;
  const std::pair<std::uint32_t, std::uint32_t> key{finished.job.v,
                                                    finished.index};
  auto res_it = std::lower_bound(s.resident_outputs_.begin(),
                                 s.resident_outputs_.end(), key);
  if (res_it == s.resident_outputs_.end() || *res_it != key) {
    s.resident_outputs_.insert(res_it, key);
  }
  if (finished.job.v >= output_slots_of_job_.size()) {
    output_slots_of_job_.resize(finished.job.v + 1);
  }
  std::vector<SlotId>& outs = output_slots_of_job_[finished.job.v];
  auto out_it = std::lower_bound(outs.begin(), outs.end(), id);
  if (out_it == outs.end() || *out_it != id) outs.insert(out_it, id);
  s.running_task_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

void Cluster::kill_task(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Busy, "no task running on slot");
  accrue(s, now);
  s.running_task_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

std::uint64_t Cluster::reserve(SlotId id, Reservation reservation,
                               SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Idle, "only idle slots can be reserved");
  accrue(s, now);
  idle_.erase(id);
  reservation.token = next_token_++;
  s.reservation_ = reservation;
  s.state_ = SlotState::ReservedIdle;
  index_reservation(id, reservation);
  return reservation.token;
}

void Cluster::release_reservation(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::ReservedIdle, "slot not reserved");
  accrue(s, now);
  unindex_reservation(id, *s.reservation_);
  s.reservation_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

bool Cluster::release_if_current(SlotId id, std::uint64_t token, SimTime now) {
  Slot& s = mutable_slot(id);
  if (s.state_ != SlotState::ReservedIdle || !s.reservation_ ||
      s.reservation_->token != token) {
    return false;
  }
  release_reservation(id, now);
  return true;
}

void Cluster::fail_slot(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Idle,
                "only drained (idle) slots can fail; kill/release first");
  accrue(s, now);
  idle_.erase(id);
  s.state_ = SlotState::Dead;
}

void Cluster::recover_slot(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Dead, "only dead slots can recover");
  accrue(s, now);
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

void Cluster::forget_job_outputs(JobId job) {
  if (job.v >= output_slots_of_job_.size()) return;
  std::vector<SlotId>& outs = output_slots_of_job_[job.v];
  for (SlotId id : outs) {
    // Ranged erase of the job's contiguous run in the sorted per-slot
    // vector.  Job ids are dense and well below 2^32, so job.v + 1 is safe.
    auto& res = mutable_slot(id).resident_outputs_;
    auto lo = std::lower_bound(res.begin(), res.end(), std::pair{job.v, 0u});
    auto hi =
        std::lower_bound(lo, res.end(), std::pair{job.v + 1, 0u});
    res.erase(lo, hi);
  }
  outs.clear();
  outs.shrink_to_fit();  // keep memory bounded by live jobs, as the map was
}

std::vector<StageId> Cluster::take_resident_outputs(SlotId id) {
  Slot& s = mutable_slot(id);
  std::vector<StageId> lost;
  lost.reserve(s.resident_outputs_.size());
  for (const auto& [job_raw, index] : s.resident_outputs_) {
    lost.push_back(StageId{JobId{job_raw}, index});
    std::vector<SlotId>& outs = output_slots_of_job_[job_raw];
    auto it = std::lower_bound(outs.begin(), outs.end(), id);
    if (it != outs.end() && *it == id) outs.erase(it);
  }
  s.resident_outputs_.clear();
  // The per-slot vector is sorted by (job, index), which is exactly StageId
  // order, so failure handling visits producer stages deterministically.
  return lost;
}

void Cluster::settle(SimTime now) {
  for (Slot& s : slots_) accrue(s, now);
}

double Cluster::total_busy_time() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.busy_time_;
  return total;
}

double Cluster::total_reserved_idle_time() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.reserved_idle_time_;
  return total;
}

double Cluster::total_dead_time() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.dead_time_;
  return total;
}

double Cluster::reserved_idle_time_of(JobId job) const {
  auto it = reserved_idle_by_job_.find(job);
  return it == reserved_idle_by_job_.end() ? 0.0 : it->second;
}

double Cluster::utilization(SimTime now) const {
  if (now <= 0.0) return 0.0;
  return total_busy_time() / (now * static_cast<double>(slots_.size()));
}

}  // namespace ssr
