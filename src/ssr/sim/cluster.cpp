#include "ssr/sim/cluster.h"

#include <utility>

namespace ssr {

Cluster::Cluster(std::uint32_t num_nodes, std::uint32_t slots_per_node)
    : num_nodes_(num_nodes) {
  SSR_CHECK_MSG(num_nodes > 0 && slots_per_node > 0,
                "cluster must have at least one slot");
  slots_.reserve(static_cast<std::size_t>(num_nodes) * slots_per_node);
  std::uint32_t next_slot = 0;
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (std::uint32_t s = 0; s < slots_per_node; ++s) {
      slots_.emplace_back(SlotId{next_slot}, NodeId{n});
      idle_.insert(SlotId{next_slot});
      ++next_slot;
    }
  }
}

Cluster::Cluster(const std::vector<std::vector<Resources>>& node_slots)
    : num_nodes_(static_cast<std::uint32_t>(node_slots.size())) {
  SSR_CHECK_MSG(!node_slots.empty(), "cluster must have at least one node");
  std::uint32_t next_slot = 0;
  for (std::uint32_t n = 0; n < node_slots.size(); ++n) {
    SSR_CHECK_MSG(!node_slots[n].empty(), "node must have at least one slot");
    for (const Resources& cap : node_slots[n]) {
      SSR_CHECK_MSG(cap.cpu > 0.0 && cap.memory > 0.0,
                    "slot capacity must be positive");
      slots_.emplace_back(SlotId{next_slot}, NodeId{n}, cap);
      idle_.insert(SlotId{next_slot});
      ++next_slot;
    }
  }
}

void Cluster::accrue(Slot& s, SimTime now) {
  SSR_CHECK_MSG(now >= s.state_since_, "time moved backwards");
  const double elapsed = now - s.state_since_;
  switch (s.state_) {
    case SlotState::Busy:
      s.busy_time_ += elapsed;
      break;
    case SlotState::ReservedIdle:
      s.reserved_idle_time_ += elapsed;
      reserved_idle_by_job_[s.reservation_->job] += elapsed;
      break;
    case SlotState::Idle:
      break;
  }
  s.state_since_ = now;
}

void Cluster::start_task(SlotId id, TaskId task, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ != SlotState::Busy, "slot already running a task");
  accrue(s, now);
  if (s.state_ == SlotState::Idle) {
    idle_.erase(id);
  } else {
    reserved_idle_.erase(id);
    s.reservation_.reset();
  }
  s.state_ = SlotState::Busy;
  s.running_task_ = task;
}

void Cluster::finish_task(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Busy, "no task running on slot");
  accrue(s, now);
  s.resident_outputs_.insert(s.running_task_->stage);
  s.running_task_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

void Cluster::kill_task(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Busy, "no task running on slot");
  accrue(s, now);
  s.running_task_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

std::uint64_t Cluster::reserve(SlotId id, Reservation reservation,
                               SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::Idle, "only idle slots can be reserved");
  accrue(s, now);
  idle_.erase(id);
  reservation.token = next_token_++;
  s.reservation_ = reservation;
  s.state_ = SlotState::ReservedIdle;
  reserved_idle_.insert(id);
  return reservation.token;
}

void Cluster::release_reservation(SlotId id, SimTime now) {
  Slot& s = mutable_slot(id);
  SSR_CHECK_MSG(s.state_ == SlotState::ReservedIdle, "slot not reserved");
  accrue(s, now);
  reserved_idle_.erase(id);
  s.reservation_.reset();
  s.state_ = SlotState::Idle;
  idle_.insert(id);
}

bool Cluster::release_if_current(SlotId id, std::uint64_t token, SimTime now) {
  Slot& s = mutable_slot(id);
  if (s.state_ != SlotState::ReservedIdle || !s.reservation_ ||
      s.reservation_->token != token) {
    return false;
  }
  release_reservation(id, now);
  return true;
}

void Cluster::forget_job_outputs(JobId job) {
  for (Slot& s : slots_) {
    std::erase_if(s.resident_outputs_,
                  [job](const StageId& st) { return st.job == job; });
  }
}

void Cluster::settle(SimTime now) {
  for (Slot& s : slots_) accrue(s, now);
}

double Cluster::total_busy_time() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.busy_time_;
  return total;
}

double Cluster::total_reserved_idle_time() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.reserved_idle_time_;
  return total;
}

double Cluster::reserved_idle_time_of(JobId job) const {
  auto it = reserved_idle_by_job_.find(job);
  return it == reserved_idle_by_job_.end() ? 0.0 : it->second;
}

double Cluster::utilization(SimTime now) const {
  if (now <= 0.0) return 0.0;
  return total_busy_time() / (now * static_cast<double>(slots_.size()));
}

}  // namespace ssr
