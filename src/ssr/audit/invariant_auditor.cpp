#include "ssr/audit/invariant_auditor.h"

#include <cmath>
#include <sstream>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr::audit {

namespace {

template <typename T>
std::string str(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

LedgerSlotState to_ledger(SlotState s) {
  switch (s) {
    case SlotState::Idle:
      return LedgerSlotState::Idle;
    case SlotState::Busy:
      return LedgerSlotState::Busy;
    case SlotState::ReservedIdle:
      return LedgerSlotState::ReservedIdle;
    case SlotState::Dead:
      return LedgerSlotState::Dead;
  }
  return LedgerSlotState::Idle;
}

const char* state_name(LedgerSlotState s) {
  switch (s) {
    case LedgerSlotState::Idle:
      return "Idle";
    case LedgerSlotState::Busy:
      return "Busy";
    case LedgerSlotState::ReservedIdle:
      return "ReservedIdle";
    case LedgerSlotState::Dead:
      return "Dead";
  }
  return "?";
}

}  // namespace

InvariantAuditor::InvariantAuditor(AuditOptions options) : options_(options) {
  SSR_CHECK_GE(options_.cross_check_period, 1u);
}

void InvariantAuditor::attach(Engine& engine) {
  ledger(engine);  // size the mirror before any event fires
  engine.add_observer(this);
}

SlotLedger& InvariantAuditor::ledger(const Engine& engine) {
  if (!ledger_) {
    const std::uint32_t n = engine.cluster().num_slots();
    ledger_.emplace(n);
    busy_since_.assign(n, kTimeZero);
    reserved_since_.assign(n, kTimeZero);
    dead_since_.assign(n, kTimeZero);
  }
  return *ledger_;
}

const std::vector<Violation>& InvariantAuditor::violations() const {
  static const std::vector<Violation> kEmpty;
  return ledger_ ? ledger_->violations() : kEmpty;
}

void InvariantAuditor::after_event(const Engine& engine) {
  ++events_;
  if (events_ % options_.cross_check_period == 0) cross_check(engine);
  if (options_.throw_on_violation && violations().size() > reported_) {
    const Violation& first = violations()[reported_];
    reported_ = violations().size();
    throw CheckError("invariant audit: " + first.to_string());
  }
  reported_ = violations().size();
}

void InvariantAuditor::cross_check(const Engine& engine) {
  SlotLedger& lg = ledger(engine);
  const Cluster& cluster = engine.cluster();
  const SimTime now = engine.sim().now();
  std::uint32_t idle = 0;
  std::uint32_t busy = 0;
  std::uint32_t reserved = 0;
  std::uint32_t dead = 0;
  for (std::uint32_t i = 0; i < cluster.num_slots(); ++i) {
    const SlotId id{i};
    const SlotState actual = cluster.slot(id).state();
    const LedgerSlotState seen = lg.slot_state(id);
    if (to_ledger(actual) != seen) {
      // Bypass the ledger event API: record directly via a release/claim
      // would double-count, so synthesize the violation here.
      Violation v;
      v.invariant = kStateMismatch;
      v.time = now;
      v.subject = str(id);
      v.expected = std::string("observed-event state ") + state_name(seen);
      v.actual = std::string("cluster state ") + state_name(to_ledger(actual));
      lg.record(v);
    }
    switch (actual) {
      case SlotState::Idle:
        ++idle;
        break;
      case SlotState::Busy:
        ++busy;
        break;
      case SlotState::ReservedIdle:
        ++reserved;
        break;
      case SlotState::Dead:
        ++dead;
        break;
    }
    const bool in_idle = cluster.idle_slots().contains(id);
    const bool in_reserved = cluster.reserved_idle_slots().contains(id);
    const bool index_ok = (actual == SlotState::Idle && in_idle &&
                           !in_reserved) ||
                          (actual == SlotState::ReservedIdle && in_reserved &&
                           !in_idle) ||
                          ((actual == SlotState::Busy ||
                            actual == SlotState::Dead) &&
                           !in_idle && !in_reserved);
    if (!index_ok) {
      Violation v;
      v.invariant = kSlotConservation;
      v.time = now;
      v.subject = str(id);
      v.expected = "free-slot indexes consistent with slot state";
      v.actual = std::string(state_name(to_ledger(actual))) +
                 " but idle-index=" + (in_idle ? "yes" : "no") +
                 " reserved-index=" + (in_reserved ? "yes" : "no");
      lg.record(v);
    }
  }
  const std::uint32_t total = idle + busy + reserved + dead;
  const bool sizes_ok =
      cluster.idle_slots().size() == idle &&
      cluster.reserved_idle_slots().size() == reserved &&
      total == cluster.num_slots();
  if (!sizes_ok) {
    Violation v;
    v.invariant = kSlotConservation;
    v.time = now;
    v.subject = "cluster";
    v.expected =
        "idle + busy + reserved-idle + dead == " + str(cluster.num_slots());
    v.actual = str(idle) + " + " + str(busy) + " + " + str(reserved) + " + " +
               str(dead) + " (idle index " + str(cluster.idle_slots().size()) +
               ", reserved index " +
               str(cluster.reserved_idle_slots().size()) + ")";
    lg.record(v);
  }
}

// --- EngineObserver ----------------------------------------------------------

void InvariantAuditor::on_job_submitted(const Engine& engine, JobId) {
  ledger(engine);
  after_event(engine);
}

void InvariantAuditor::on_job_finished(const Engine& engine, JobId) {
  ledger(engine);
  after_event(engine);
}

void InvariantAuditor::on_stage_submitted(const Engine& engine,
                                          StageId stage) {
  SlotLedger& lg = ledger(engine);
  const StageSpec& spec = engine.graph(stage.job).stage(stage.index);
  std::vector<StageId> parents;
  parents.reserve(spec.parents.size());
  for (std::uint32_t p : spec.parents) {
    parents.push_back(StageId{stage.job, p});
  }
  lg.on_stage_submitted(stage, parents, engine.sim().now());
  after_event(engine);
}

void InvariantAuditor::on_stage_finished(const Engine& engine, StageId stage) {
  ledger(engine).on_stage_finished(stage, engine.sim().now());
  after_event(engine);
}

void InvariantAuditor::on_task_started(const Engine& engine, TaskId task,
                                       SlotId slot) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::ReservedIdle) {
    // The start consumes the reservation: close its reserved-idle interval
    // and validate the claim (priority rule, deadline).
    reserved_seconds_ += now - reserved_since_[slot.v];
    lg.on_claim(slot, task, engine.graph(task.stage.job).priority(), now);
  } else {
    lg.on_start(slot, task, now);
  }
  busy_since_[slot.v] = now;
  after_event(engine);
}

void InvariantAuditor::on_task_finished(const Engine& engine, TaskId task,
                                        SlotId slot) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::Busy) {
    busy_seconds_ += now - busy_since_[slot.v];
  }
  lg.on_finish(slot, task, now);
  after_event(engine);
}

void InvariantAuditor::on_task_killed(const Engine& engine, TaskId task,
                                      SlotId slot) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::Busy) {
    busy_seconds_ += now - busy_since_[slot.v];
  }
  lg.on_kill(slot, task, now);
  after_event(engine);
}

void InvariantAuditor::on_task_failed(const Engine& engine, TaskId task,
                                      SlotId slot) {
  // Same mirror transition as a race-loss kill: the attempt ends, the slot
  // empties (it goes Dead in the following on_slot_failed event).
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::Busy) {
    busy_seconds_ += now - busy_since_[slot.v];
  }
  lg.on_kill(slot, task, now);
  after_event(engine);
}

void InvariantAuditor::on_task_requeued(const Engine& engine, TaskId) {
  ledger(engine);
  after_event(engine);
}

void InvariantAuditor::on_stage_invalidated(const Engine& engine,
                                            StageId stage) {
  ledger(engine).on_stage_invalidated(stage, engine.sim().now());
  after_event(engine);
}

void InvariantAuditor::on_slot_failed(const Engine& engine, SlotId slot) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  lg.on_fail(slot, now);
  dead_since_[slot.v] = now;
  after_event(engine);
}

void InvariantAuditor::on_slot_recovered(const Engine& engine, SlotId slot) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::Dead) {
    dead_seconds_ += now - dead_since_[slot.v];
  }
  lg.on_recover(slot, now);
  after_event(engine);
}

void InvariantAuditor::on_slot_reserved(const Engine& engine, SlotId slot,
                                        const Reservation& reservation) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  lg.on_reserve(slot, reservation.job, reservation.priority,
                reservation.deadline, now);
  reserved_since_[slot.v] = now;
  after_event(engine);
}

void InvariantAuditor::on_reservation_released(const Engine& engine,
                                               SlotId slot,
                                               ReservationEndReason reason) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  if (lg.slot_state(slot) == LedgerSlotState::ReservedIdle) {
    reserved_seconds_ += now - reserved_since_[slot.v];
  }
  lg.on_release(slot,
                reason == ReservationEndReason::Expired
                    ? LedgerRelease::Expired
                    : LedgerRelease::Released,
                now);
  after_event(engine);
}

void InvariantAuditor::on_run_complete(const Engine& engine) {
  SlotLedger& lg = ledger(engine);
  const SimTime now = engine.sim().now();
  const Cluster& cluster = engine.cluster();
  // Engine::run() settles the cluster before notifying, so the cluster
  // totals and the event-stream totals describe the same interval [0, now].
  const auto check_total = [&](const char* what, double cluster_total,
                               double observed) {
    const double tolerance =
        options_.accounting_tolerance +
        1e-9 * std::max(std::abs(cluster_total), std::abs(observed));
    if (std::abs(cluster_total - observed) > tolerance) {
      Violation v;
      v.invariant = kSlotAccounting;
      v.time = now;
      v.subject = what;
      v.expected = "cluster total " + str(cluster_total);
      v.actual = "event-stream total " + str(observed);
      lg.record(v);
    }
  };
  check_total("busy slot-seconds", cluster.total_busy_time(), busy_seconds_);
  // Close the still-open reserved-idle intervals (e.g. a static carve-out
  // with an infinite deadline holds its slots through end of run).
  double reserved_observed = reserved_seconds_;
  for (std::uint32_t i = 0; i < cluster.num_slots(); ++i) {
    if (lg.slot_state(SlotId{i}) == LedgerSlotState::ReservedIdle) {
      reserved_observed += now - reserved_since_[i];
    }
  }
  check_total("reserved-idle slot-seconds", cluster.total_reserved_idle_time(),
              reserved_observed);
  // Close the still-open dead intervals of slots that never recovered, so
  // the dead-time comparison covers permanent failures too.
  double dead_observed = dead_seconds_;
  for (std::uint32_t i = 0; i < cluster.num_slots(); ++i) {
    if (lg.slot_state(SlotId{i}) == LedgerSlotState::Dead) {
      dead_observed += now - dead_since_[i];
    }
  }
  check_total("dead slot-seconds", cluster.total_dead_time(), dead_observed);
  // No task lost: a failure may kill attempts and invalidate outputs, but
  // recovery must leave every submitted stage complete by end of run.
  for (std::uint32_t j = 0; j < engine.num_jobs(); ++j) {
    const JobId job{j};
    const std::uint32_t stages = engine.graph(job).num_stages();
    for (std::uint32_t s = 0; s < stages; ++s) {
      const StageRuntime* st = engine.stage_runtime(StageId{job, s});
      if (st != nullptr && !st->complete()) {
        Violation v;
        v.invariant = kTaskLost;
        v.time = now;
        v.subject = str(StageId{job, s});
        v.expected = "every submitted stage complete at end of run";
        v.actual = str(st->finished_count()) + "/" + str(st->parallelism()) +
                   " tasks finished";
        lg.record(v);
      }
    }
  }
  after_event(engine);
}

}  // namespace ssr::audit
