// SlotLedger adapter for captured event streams.
//
// ReplayAuditor re-runs the invariant audit over a trace capture
// (metrics/trace_capture.h) with no Engine: each TraceEvent maps onto the
// same SlotLedger call the live InvariantAuditor would have made for the
// corresponding observer callback (claim-vs-start split on the ledger's own
// reserved state, task_failed folded onto on_kill, stage parents from the
// captured barrier lists).  A capture of a clean run must replay clean; a
// capture that trips the ledger names the violated invariant — the
// replay-verify CI step uses this to re-certify committed fixtures without
// re-simulating them.
#pragma once

#include <map>
#include <optional>

#include "ssr/audit/slot_ledger.h"
#include "ssr/common/ids.h"
#include "ssr/metrics/trace_capture.h"

namespace ssr::audit {

class ReplayAuditor : public TraceConsumer {
 public:
  void on_trace_begin(const TraceHeader& header) override;
  void on_trace_event(const TraceEvent& event) override;

  /// Valid after on_trace_begin (replay() fires it first).
  const SlotLedger& ledger() const;

  bool clean() const { return ledger().clean(); }

 private:
  std::optional<SlotLedger> ledger_;
  /// Job priorities captured at submission (the claim check's input).
  std::map<JobId, int> priority_;
};

}  // namespace ssr::audit
