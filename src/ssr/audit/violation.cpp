#include "ssr/audit/violation.h"

#include <ostream>
#include <sstream>

namespace ssr::audit {

std::string Violation::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Violation& v) {
  os << "[" << v.invariant << "] t=" << v.time << " " << v.subject
     << ": expected " << v.expected << ", actual " << v.actual;
  return os;
}

std::string format_report(const std::vector<Violation>& violations) {
  if (violations.empty()) return "";
  std::ostringstream os;
  os << violations.size() << " invariant violation"
     << (violations.size() == 1 ? "" : "s") << ":";
  for (const Violation& v : violations) os << "\n  " << v;
  return os.str();
}

}  // namespace ssr::audit
