#include "ssr/audit/tenant_audit.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>

#include "ssr/sched/virtual_cluster.h"

namespace ssr::audit {

namespace {

std::string job_subject(const std::string& tenant, JobId job) {
  std::ostringstream os;
  os << tenant << "/job" << job.v;
  return os.str();
}

/// Log-replayed ground truth for one tenant.
struct Replayed {
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::int64_t demand_in_flight = 0;  ///< signed to expose under-runs
  SimTime last_admitted_at = -1.0;
  SimTime last_queued_request = -1.0;  ///< FIFO check over from-queue records
};

}  // namespace

std::vector<Violation> audit_virtual_clusters(const VirtualClusterManager& vcm,
                                              std::uint32_t physical_slots) {
  std::vector<Violation> out;
  const auto violate = [&out](const char* invariant, SimTime time,
                              std::string subject, std::string expected,
                              std::string actual) {
    out.push_back(Violation{invariant, time, std::move(subject),
                            std::move(expected), std::move(actual)});
  };

  std::unordered_map<std::string, Replayed> replay;
  std::unordered_map<std::uint32_t, std::uint32_t> admitted_demand;  // JobId.v

  for (const AdmissionRecord& r : vcm.admission_log()) {
    Replayed& t = replay[r.tenant];
    t.admitted += 1;
    t.demand_in_flight += r.demand;
    admitted_demand.emplace(r.job.v, r.demand);

    if (r.in_flight_after > r.max_at_admit) {
      violate(kTenantShareOverrun, r.admitted_at,
              job_subject(r.tenant, r.job),
              "in-flight demand <= max share " +
                  std::to_string(r.max_at_admit),
              std::to_string(r.in_flight_after) + " slots after admission");
    }
    if (r.admitted_at < r.requested_at) {
      violate(kTenantAdmissionOrder, r.admitted_at,
              job_subject(r.tenant, r.job),
              "admission at or after the request (" +
                  std::to_string(r.requested_at) + ")",
              "admitted at " + std::to_string(r.admitted_at));
    }
    if (r.admitted_at < t.last_admitted_at) {
      violate(kTenantAdmissionOrder, r.admitted_at,
              job_subject(r.tenant, r.job),
              "admission instants non-decreasing per tenant (last " +
                  std::to_string(t.last_admitted_at) + ")",
              "admitted at " + std::to_string(r.admitted_at));
    }
    t.last_admitted_at = r.admitted_at;
    if (r.from_queue) {
      // The queue is FIFO, so from-queue admissions must come out in
      // request order.
      if (r.requested_at < t.last_queued_request) {
        violate(kTenantAdmissionOrder, r.admitted_at,
                job_subject(r.tenant, r.job),
                "queue served in request order (last request " +
                    std::to_string(t.last_queued_request) + ")",
                "request from " + std::to_string(r.requested_at));
      }
      t.last_queued_request = r.requested_at;
    }
  }

  SimTime last_finish = 0.0;
  for (const CompletionRecord& c : vcm.completion_log()) {
    Replayed& t = replay[c.tenant];
    t.completed += 1;
    t.demand_in_flight -= c.demand;
    last_finish = c.finished_at;
    const auto it = admitted_demand.find(c.job.v);
    if (it == admitted_demand.end()) {
      violate(kTenantSlotConservation, c.finished_at,
              job_subject(c.tenant, c.job),
              "every completion matches a logged admission", "no admission");
    } else if (it->second != c.demand) {
      violate(kTenantSlotConservation, c.finished_at,
              job_subject(c.tenant, c.job),
              "released demand == admitted demand (" +
                  std::to_string(it->second) + ")",
              "released " + std::to_string(c.demand));
    }
    if (t.demand_in_flight < 0) {
      violate(kTenantSlotConservation, c.finished_at,
              job_subject(c.tenant, c.job),
              "in-flight demand >= 0 after release",
              std::to_string(t.demand_in_flight) + " slots");
    }
  }

  std::uint64_t guaranteed = 0;
  for (const std::string& name : vcm.tenant_names()) {
    const VirtualClusterSpec& spec = vcm.spec(name);
    const TenantStats& stats = vcm.stats(name);
    const Replayed& t = replay[name];
    guaranteed += spec.min_slots;

    const auto counter = [&](const char* what, std::uint64_t expected,
                             std::uint64_t actual) {
      if (expected != actual) {
        violate(kTenantSlotConservation, last_finish, name,
                std::string(what) + " == " + std::to_string(expected) +
                    " (log replay)",
                std::to_string(actual) + " (live counter)");
      }
    };
    counter("admitted", t.admitted, stats.admitted);
    counter("completed", t.completed, stats.completed);
    counter("jobs in flight", t.admitted - t.completed,
            stats.jobs_in_flight);
    counter("demand in flight",
            static_cast<std::uint64_t>(
                t.demand_in_flight < 0 ? 0 : t.demand_in_flight),
            stats.demand_in_flight);
    counter("submitted = admitted + rejected + queued",
            stats.admitted + stats.rejected + vcm.queued_jobs(name),
            stats.submitted);
  }
  if (guaranteed > physical_slots) {
    violate(kTenantSlotConservation, last_finish, "cluster",
            "guaranteed minima <= " + std::to_string(physical_slots) +
                " physical slots",
            std::to_string(guaranteed) + " slots promised");
  }
  return out;
}

}  // namespace ssr::audit
