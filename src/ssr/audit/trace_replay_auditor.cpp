#include "ssr/audit/trace_replay_auditor.h"

#include <vector>

#include "ssr/common/check.h"

namespace ssr::audit {

void ReplayAuditor::on_trace_begin(const TraceHeader& header) {
  SSR_CHECK_MSG(header.num_slots > 0,
                "trace header declares a cluster with no slots");
  ledger_.emplace(header.num_slots);
  priority_.clear();
}

const SlotLedger& ReplayAuditor::ledger() const {
  SSR_CHECK_MSG(ledger_.has_value(),
                "ReplayAuditor used before on_trace_begin");
  return *ledger_;
}

void ReplayAuditor::on_trace_event(const TraceEvent& e) {
  SlotLedger& lg = *ledger_;
  switch (e.kind) {
    case TraceEventKind::kJobSubmitted:
      priority_[e.job] = e.priority;
      break;
    case TraceEventKind::kJobFinished:
    case TraceEventKind::kTaskRequeued:
    case TraceEventKind::kRunComplete:
      break;  // no ledger transition
    case TraceEventKind::kStageSubmitted: {
      std::vector<StageId> parents;
      parents.reserve(e.parents.size());
      for (std::uint32_t p : e.parents) {
        parents.push_back(StageId{e.stage.job, p});
      }
      lg.on_stage_submitted(e.stage, parents, e.time);
      break;
    }
    case TraceEventKind::kStageFinished:
      lg.on_stage_finished(e.stage, e.time);
      break;
    case TraceEventKind::kStageInvalidated:
      lg.on_stage_invalidated(e.stage, e.time);
      break;
    case TraceEventKind::kTaskStarted:
      // Same split as the live InvariantAuditor: a start on a slot the
      // ledger believes reserved is a claim (priority/deadline checks).
      if (lg.slot_state(e.slot) == LedgerSlotState::ReservedIdle) {
        auto it = priority_.find(e.task.stage.job);
        lg.on_claim(e.slot, e.task,
                    it != priority_.end() ? it->second : 0, e.time);
      } else {
        lg.on_start(e.slot, e.task, e.time);
      }
      break;
    case TraceEventKind::kTaskFinished:
      lg.on_finish(e.slot, e.task, e.time);
      break;
    case TraceEventKind::kTaskKilled:
    case TraceEventKind::kTaskFailed:
      // task_failed is the same mirror transition as a race-loss kill; the
      // slot goes Dead in the following kSlotFailed event.
      lg.on_kill(e.slot, e.task, e.time);
      break;
    case TraceEventKind::kSlotFailed:
      lg.on_fail(e.slot, e.time);
      break;
    case TraceEventKind::kSlotRecovered:
      lg.on_recover(e.slot, e.time);
      break;
    case TraceEventKind::kSlotReserved:
      lg.on_reserve(e.slot, e.job, e.priority, e.deadline, e.time);
      break;
    case TraceEventKind::kReservationReleased:
      lg.on_release(e.slot,
                    e.reason == ReservationEndReason::Expired
                        ? LedgerRelease::Expired
                        : LedgerRelease::Released,
                    e.time);
      break;
  }
}

}  // namespace ssr::audit
