// Runtime invariant auditor for the scheduling engine.
//
// InvariantAuditor attaches to an Engine through the EngineObserver seam and
// validates, on every event, the state-machine invariants the paper states
// informally (see DESIGN.md §7 for the invariant -> paper mapping):
//
//  * global slot conservation: idle + busy + reserved-idle == capacity, and
//    the cluster's idle/reserved index sets agree with per-slot states;
//  * the reserved-slot priority rule: a reserved slot is only ever taken by
//    the reserving job or a strictly higher-priority job (Alg. 1);
//  * reservation lifecycle legality: reserve -> {claim | expire-at-deadline |
//    release}, never double-claim, never claim past the deadline 𝒟;
//  * event-time monotonicity across the whole observer stream;
//  * barrier ordering: no downstream-phase task starts before every upstream
//    task finished;
//  * slot-time accounting: the busy / reserved-idle / dead slot-seconds the
//    event stream implies (the same stream metrics/collectors consume) match
//    the cluster's own accounting at end of run;
//  * failure safety: no task starts, claim, or reservation ever touches a
//    Dead slot, and no logical task is lost — at end of run every submitted
//    stage is complete even when fault injection killed attempts and
//    invalidated resident outputs.
//
// Violations produce structured audit::Violation reports; with
// `throw_on_violation` (the default, and what `-DSSR_AUDIT=ON` builds use via
// run_scenario) the first violation throws ssr::CheckError so tests and
// benches fail loudly at the offending event.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ssr/audit/slot_ledger.h"
#include "ssr/audit/violation.h"
#include "ssr/common/ids.h"
#include "ssr/sched/types.h"

namespace ssr::audit {

struct AuditOptions {
  /// Throw ssr::CheckError at the first violation (audited builds).  When
  /// false the auditor only collects, which seeded-bug tests use to assert
  /// on exact invariant ids.
  bool throw_on_violation = true;

  /// Absolute slack (slot-seconds) for the end-of-run accounting comparison;
  /// scaled up with the magnitude of the compared totals to absorb float
  /// accumulation error on long runs.
  double accounting_tolerance = 1e-6;

  /// Run the O(num_slots) cluster cross-check every Nth event (1 = every
  /// event).  Lifecycle/priority/barrier checks always run on every event.
  std::uint64_t cross_check_period = 1;
};

class InvariantAuditor : public EngineObserver {
 public:
  explicit InvariantAuditor(AuditOptions options = {});

  /// Register with `engine` (non-owning; the auditor must outlive run()).
  /// Must be called before Engine::run().
  void attach(Engine& engine);

  // --- EngineObserver -------------------------------------------------------
  void on_job_submitted(const Engine&, JobId) override;
  void on_job_finished(const Engine&, JobId) override;
  void on_stage_submitted(const Engine&, StageId) override;
  void on_stage_finished(const Engine&, StageId) override;
  void on_task_started(const Engine&, TaskId, SlotId) override;
  void on_task_finished(const Engine&, TaskId, SlotId) override;
  void on_task_killed(const Engine&, TaskId, SlotId) override;
  void on_task_failed(const Engine&, TaskId, SlotId) override;
  void on_task_requeued(const Engine&, TaskId) override;
  void on_stage_invalidated(const Engine&, StageId) override;
  void on_slot_failed(const Engine&, SlotId) override;
  void on_slot_recovered(const Engine&, SlotId) override;
  void on_slot_reserved(const Engine&, SlotId, const Reservation&) override;
  void on_reservation_released(const Engine&, SlotId,
                               ReservationEndReason) override;
  void on_run_complete(const Engine&) override;

  // --- Results --------------------------------------------------------------

  bool clean() const { return violations().empty(); }
  const std::vector<Violation>& violations() const;
  /// Human-readable multi-line report; empty when clean.
  std::string report() const { return format_report(violations()); }
  std::uint64_t events_audited() const { return events_; }

 private:
  SlotLedger& ledger(const Engine& engine);
  /// Conservation + mirror-vs-cluster checks, then the throw policy.
  void after_event(const Engine& engine);
  void cross_check(const Engine& engine);

  AuditOptions options_;
  std::optional<SlotLedger> ledger_;
  std::uint64_t events_ = 0;
  std::size_t reported_ = 0;  ///< violations already thrown for

  // Slot-time accounting mirrors (indexed by slot id).
  std::vector<SimTime> busy_since_;
  std::vector<SimTime> reserved_since_;
  std::vector<SimTime> dead_since_;
  double busy_seconds_ = 0.0;
  double reserved_seconds_ = 0.0;
  double dead_seconds_ = 0.0;
};

}  // namespace ssr::audit
