// Tenant-aware invariants for the multi-tenant virtual-cluster layer.
//
// VirtualClusterManager keeps an append-only admission/completion log; this
// audit replays it after (or during) a run and cross-checks the manager's
// incremental per-tenant counters against the replayed ground truth.  It is
// the admission-boundary analog of InvariantAuditor: where the auditor
// mirrors slot state event by event, this pass proves the three properties
// the virtual-cluster layer promises —
//
//   * share bounds:   no admission ever exceeded the tenant's max share at
//                     the instant it was granted (kTenantShareOverrun);
//   * admission order: per tenant, admissions are FIFO-monotone in time and
//                     never precede their request (kTenantAdmissionOrder);
//   * conservation:   guaranteed minima fit the physical cluster, and each
//                     tenant's live counters equal the log replay
//                     (kTenantSlotConservation).
#pragma once

#include <cstdint>
#include <vector>

#include "ssr/audit/violation.h"

namespace ssr {
class VirtualClusterManager;
}  // namespace ssr

namespace ssr::audit {

/// Replay the manager's logs and return every violated tenant invariant
/// (empty = clean).  Callable mid-run (counters are checked against the
/// prefix replayed so far) or after drain().
std::vector<Violation> audit_virtual_clusters(
    const VirtualClusterManager& vcm, std::uint32_t physical_slots);

}  // namespace ssr::audit
