// Structured invariant-violation reports.
//
// Every audited invariant has a stable string id; seeded-bug tests assert on
// the exact id, and operators grep audit logs by it.  A Violation carries the
// simulated instant, the subject (slot / task / stage), and the expected vs
// actual condition, so a report pinpoints the offending event without a
// debugger.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "ssr/common/time.h"

namespace ssr::audit {

// --- Invariant ids (see DESIGN.md §7 for the paper mapping) -----------------

/// idle + busy + reserved-idle slot counts must equal cluster capacity, and
/// the cluster's idle/reserved index sets must agree with per-slot states.
inline constexpr const char* kSlotConservation = "slot-conservation";
/// The auditor's mirrored slot state disagrees with the cluster's.
inline constexpr const char* kStateMismatch = "slot-state-mismatch";
/// A task of an equal/lower-priority foreign job landed on a reserved slot
/// (Algorithm 1's ApprovalLogic).
inline constexpr const char* kReservedSlotPriority = "reserved-slot-priority";
/// reserve() on a slot that is not Idle.
inline constexpr const char* kDoubleReserve = "reservation-double-reserve";
/// A claim on a slot with no active reservation (double-claim).
inline constexpr const char* kDoubleClaim = "reservation-double-claim";
/// A claim after the reservation's deadline 𝒟 passed.
inline constexpr const char* kExpiredClaim = "reservation-expired-claim";
/// release() on a slot with no active reservation.
inline constexpr const char* kDoubleRelease = "reservation-double-release";
/// An expiry fired at a time other than the reservation's deadline.
inline constexpr const char* kExpiryTime = "reservation-expiry-time";
/// Event timestamps moved backwards.
inline constexpr const char* kTimeMonotonic = "event-time-monotonic";
/// A stage was submitted (or a task started) before every upstream task
/// finished, or a stage was submitted/finished twice.
inline constexpr const char* kBarrierOrdering = "barrier-ordering";
/// Task attempt state machine broken: double start, finish/kill of a task
/// that is not running on the slot, start on a busy slot.
inline constexpr const char* kTaskLifecycle = "task-lifecycle";
/// Observed busy / reserved-idle slot-seconds disagree with the cluster's
/// accounting (metrics/collectors consume the same event stream).
inline constexpr const char* kSlotAccounting = "slot-accounting";
/// A dead slot was used: reserve/start/claim on a Dead slot, failure of a
/// non-drained slot, or recovery of a slot that was not Dead.
inline constexpr const char* kDeadSlotUse = "dead-slot-use";
/// End of run with a submitted stage still incomplete — a failure lost a
/// task and recovery never re-ran it.
inline constexpr const char* kTaskLost = "task-lost";

// --- Multi-tenant virtual clusters (audit/tenant_audit.h) -------------------

/// An admission pushed a tenant's in-flight slot demand past its maximum
/// share at the admission instant.
inline constexpr const char* kTenantShareOverrun = "tenant-share-overrun";
/// Admission within a tenant was not FIFO-monotone: admission instants went
/// backwards, or a job was admitted before it was requested.
inline constexpr const char* kTenantAdmissionOrder = "tenant-admission-order";
/// Virtual-cluster slot conservation broken: guaranteed minima exceed the
/// physical cluster, or a tenant's counters disagree with the replayed
/// admission/completion log.
inline constexpr const char* kTenantSlotConservation =
    "tenant-slot-conservation";

/// One invariant violation, ready for logging or test assertions.
struct Violation {
  std::string invariant;  ///< one of the k* ids above
  SimTime time = 0.0;     ///< simulated instant of the offending event
  std::string subject;    ///< e.g. "slot3", "job1/s0/t2"
  std::string expected;
  std::string actual;

  std::string to_string() const;
};

std::ostream& operator<<(std::ostream& os, const Violation& v);

/// Multi-line report ("N invariant violations:\n  ..."); empty string when
/// the list is empty.
std::string format_report(const std::vector<Violation>& violations);

}  // namespace ssr::audit
