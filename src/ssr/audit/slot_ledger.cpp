#include "ssr/audit/slot_ledger.h"

#include <cmath>
#include <sstream>
#include <utility>

namespace ssr::audit {

namespace {

/// Reservation deadlines are absolute event times the engine itself
/// scheduled, so expiry should land exactly on the deadline; the epsilon only
/// absorbs decimal-literal rounding.
constexpr double kDeadlineEps = 1e-9;

template <typename T>
std::string str(const T& value) {
  std::ostringstream os;
  os << value;
  return os.str();
}

const char* state_name(LedgerSlotState s) {
  switch (s) {
    case LedgerSlotState::Idle:
      return "Idle";
    case LedgerSlotState::Busy:
      return "Busy";
    case LedgerSlotState::ReservedIdle:
      return "ReservedIdle";
    case LedgerSlotState::Dead:
      return "Dead";
  }
  return "?";
}

}  // namespace

SlotLedger::SlotLedger(std::uint32_t num_slots) : slots_(num_slots) {}

SlotLedger::SlotMirror& SlotLedger::mirror(SlotId slot) {
  return slots_.at(slot.v);
}

LedgerSlotState SlotLedger::slot_state(SlotId slot) const {
  return slots_.at(slot.v).state;
}

void SlotLedger::flag(const char* invariant, SimTime now, std::string subject,
                      std::string expected, std::string actual) {
  violations_.push_back(Violation{invariant, now, std::move(subject),
                                  std::move(expected), std::move(actual)});
}

void SlotLedger::record(Violation violation) {
  violations_.push_back(std::move(violation));
}

void SlotLedger::touch(SimTime now) {
  if (now < last_time_) {
    flag(kTimeMonotonic, now, "clock", "time >= " + str(last_time_),
         str(now));
  }
  last_time_ = std::max(last_time_, now);
}

void SlotLedger::check_stage_known(TaskId task, SimTime now) {
  if (!submitted_stages_.contains(task.stage)) {
    flag(kBarrierOrdering, now, str(task),
         "task's stage submitted before any attempt starts",
         "stage " + str(task.stage) + " never submitted");
  }
}

void SlotLedger::on_reserve(SlotId slot, JobId job, int priority,
                            SimTime deadline, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state == LedgerSlotState::Dead) {
    flag(kDeadSlotUse, now, str(slot), "a live slot to reserve", "Dead");
  } else if (m.state != LedgerSlotState::Idle) {
    flag(kDoubleReserve, now, str(slot), "Idle slot to reserve",
         std::string(state_name(m.state)) +
             (m.reservation ? " (reserved by " + str(m.reservation->job) + ")"
                            : ""));
  }
  m.state = LedgerSlotState::ReservedIdle;
  m.reservation = ReservationMirror{job, priority, deadline};
  m.task.reset();
}

void SlotLedger::on_claim(SlotId slot, TaskId task, int priority,
                          SimTime now) {
  touch(now);
  check_stage_known(task, now);
  SlotMirror& m = mirror(slot);
  if (m.state == LedgerSlotState::Dead) {
    flag(kDeadSlotUse, now, str(task), "a live slot to claim",
         str(slot) + " is Dead");
  } else if (m.state != LedgerSlotState::ReservedIdle || !m.reservation) {
    flag(kDoubleClaim, now, str(slot),
         "an active reservation to claim for " + str(task),
         std::string(state_name(m.state)) + " with no active reservation");
  } else {
    const ReservationMirror& res = *m.reservation;
    if (task.stage.job != res.job && priority <= res.priority) {
      flag(kReservedSlotPriority, now, str(task),
           "claim by " + str(res.job) + " or priority > " + str(res.priority),
           str(task.stage.job) + " with priority " + str(priority));
    }
    if (now > res.deadline + kDeadlineEps) {
      flag(kExpiredClaim, now, str(task),
           "claim at or before deadline " + str(res.deadline), str(now));
    }
  }
  m.state = LedgerSlotState::Busy;
  m.reservation.reset();
  m.task = task;
}

void SlotLedger::on_start(SlotId slot, TaskId task, SimTime now) {
  touch(now);
  check_stage_known(task, now);
  SlotMirror& m = mirror(slot);
  if (m.state == LedgerSlotState::Dead) {
    flag(kDeadSlotUse, now, str(task), "a live slot to start on",
         str(slot) + " is Dead");
  } else if (m.state == LedgerSlotState::Busy) {
    flag(kTaskLifecycle, now, str(task), "an idle slot to start on",
         str(slot) + " already running " +
             (m.task ? str(*m.task) : std::string("?")));
  } else if (m.state == LedgerSlotState::ReservedIdle) {
    // The caller routed a reserved-slot start through on_start instead of
    // on_claim: the reservation is being consumed without claim validation.
    flag(kTaskLifecycle, now, str(task),
         "reserved slot consumed via a claim", "plain start on " + str(slot));
  }
  m.state = LedgerSlotState::Busy;
  m.reservation.reset();
  m.task = task;
}

void SlotLedger::on_finish(SlotId slot, TaskId task, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state != LedgerSlotState::Busy || m.task != task) {
    flag(kTaskLifecycle, now, str(task),
         "finish of the task running on " + str(slot),
         m.task ? str(*m.task) + " running" : "slot not busy");
  }
  m.state = LedgerSlotState::Idle;
  m.reservation.reset();
  m.task.reset();
}

void SlotLedger::on_kill(SlotId slot, TaskId task, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state != LedgerSlotState::Busy || m.task != task) {
    flag(kTaskLifecycle, now, str(task),
         "kill of the task running on " + str(slot),
         m.task ? str(*m.task) + " running" : "slot not busy");
  }
  m.state = LedgerSlotState::Idle;
  m.reservation.reset();
  m.task.reset();
}

void SlotLedger::on_release(SlotId slot, LedgerRelease kind, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state != LedgerSlotState::ReservedIdle || !m.reservation) {
    flag(kDoubleRelease, now, str(slot), "an active reservation to release",
         std::string(state_name(m.state)) + " with no active reservation");
  } else if (kind == LedgerRelease::Expired) {
    const SimTime deadline = m.reservation->deadline;
    if (deadline >= kTimeInfinity) {
      flag(kExpiryTime, now, str(slot),
           "no expiry (reservation has no deadline)", "expired at " + str(now));
    } else if (std::abs(now - deadline) > kDeadlineEps) {
      flag(kExpiryTime, now, str(slot), "expiry exactly at " + str(deadline),
           str(now));
    }
  }
  m.state = LedgerSlotState::Idle;
  m.reservation.reset();
  m.task.reset();
}

void SlotLedger::on_fail(SlotId slot, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state != LedgerSlotState::Idle) {
    flag(kDeadSlotUse, now, str(slot),
         "a drained (Idle) slot at failure time",
         std::string(state_name(m.state)) +
             (m.task ? " running " + str(*m.task) : std::string()));
  }
  m.state = LedgerSlotState::Dead;
  m.reservation.reset();
  m.task.reset();
}

void SlotLedger::on_recover(SlotId slot, SimTime now) {
  touch(now);
  SlotMirror& m = mirror(slot);
  if (m.state != LedgerSlotState::Dead) {
    flag(kDeadSlotUse, now, str(slot), "a Dead slot to recover",
         state_name(m.state));
  }
  m.state = LedgerSlotState::Idle;
  m.reservation.reset();
  m.task.reset();
}

void SlotLedger::on_stage_submitted(StageId stage,
                                    const std::vector<StageId>& parents,
                                    SimTime now) {
  touch(now);
  if (!submitted_stages_.insert(stage).second) {
    flag(kBarrierOrdering, now, str(stage), "a single submission",
         "stage submitted twice");
  }
  for (StageId parent : parents) {
    if (!finished_stages_.contains(parent)) {
      flag(kBarrierOrdering, now, str(stage),
           "all upstream tasks finished before the barrier clears",
           "parent " + str(parent) + " unfinished");
    }
  }
}

void SlotLedger::on_stage_finished(StageId stage, SimTime now) {
  touch(now);
  if (!submitted_stages_.contains(stage)) {
    flag(kBarrierOrdering, now, str(stage), "finish of a submitted stage",
         "stage never submitted");
  }
  if (!finished_stages_.insert(stage).second) {
    flag(kBarrierOrdering, now, str(stage), "a single completion",
         "stage finished twice");
  }
}

void SlotLedger::on_stage_invalidated(StageId stage, SimTime now) {
  touch(now);
  if (finished_stages_.erase(stage) == 0) {
    flag(kBarrierOrdering, now, str(stage),
         "invalidation of a finished stage", "stage was not finished");
  }
}

}  // namespace ssr::audit
