// Pure event-stream invariant checker for the slot / reservation / barrier
// state machines.
//
// SlotLedger replays scheduler events against its own mirror of the cluster
// and records a Violation for every transition the paper's model forbids:
// reservations may only be placed on idle slots, claimed by the reserving job
// or a strictly higher priority, and must end exactly at their deadline;
// tasks may only start after their stage's barrier cleared; event time never
// moves backwards.  It is deliberately independent of Engine/Cluster so
// seeded-bug tests can feed illegal sequences directly and assert the exact
// invariant id; InvariantAuditor adapts live engine callbacks onto it and
// adds the cluster cross-checks a mirror alone cannot do.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "ssr/audit/violation.h"
#include "ssr/common/ids.h"
#include "ssr/common/time.h"

namespace ssr::audit {

/// Mirror of a slot's state (kept separate from ssr::SlotState so the ledger
/// never depends on sim/cluster headers).
enum class LedgerSlotState { Idle, Busy, ReservedIdle, Dead };

/// How a reservation ended without being claimed.
enum class LedgerRelease { Expired, Released };

class SlotLedger {
 public:
  explicit SlotLedger(std::uint32_t num_slots);

  // --- Events ---------------------------------------------------------------
  // Each call validates the transition, records violations, and then applies
  // the transition best-effort so one bug does not cascade into dozens of
  // spurious reports.

  /// Idle -> ReservedIdle on behalf of `job` with inherited `priority`.
  void on_reserve(SlotId slot, JobId job, int priority, SimTime deadline,
                  SimTime now);

  /// A task starts on a slot the ledger knows is reserved: validates the
  /// Algorithm-1 priority rule and the deadline.
  void on_claim(SlotId slot, TaskId task, int priority, SimTime now);

  /// A task starts on an unreserved slot.
  void on_start(SlotId slot, TaskId task, SimTime now);

  void on_finish(SlotId slot, TaskId task, SimTime now);
  void on_kill(SlotId slot, TaskId task, SimTime now);

  /// ReservedIdle -> Idle without a claim (expiry or explicit release).
  void on_release(SlotId slot, LedgerRelease kind, SimTime now);

  /// Idle -> Dead (fault injection).  The engine drains the slot first, so
  /// arriving here in any other state is a dead-slot-use violation.
  void on_fail(SlotId slot, SimTime now);

  /// Dead -> Idle.
  void on_recover(SlotId slot, SimTime now);

  /// Barrier tracking: `parents` must all be finished when `stage` is
  /// submitted; tasks may only start for submitted stages.
  void on_stage_submitted(StageId stage, const std::vector<StageId>& parents,
                          SimTime now);
  void on_stage_finished(StageId stage, SimTime now);

  /// A finished stage lost outputs to a failure and re-opened; it may finish
  /// again.  Invalidating a stage the ledger never saw finish is a
  /// barrier-ordering violation.
  void on_stage_invalidated(StageId stage, SimTime now);

  // --- Inspection -----------------------------------------------------------

  std::uint32_t num_slots() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  LedgerSlotState slot_state(SlotId slot) const;

  bool clean() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Append an externally-detected violation (the adapter's cluster
  /// cross-checks report through the same list as event checks).
  void record(Violation violation);

 private:
  struct ReservationMirror {
    JobId job;
    int priority = 0;
    SimTime deadline = kTimeInfinity;
  };
  struct SlotMirror {
    LedgerSlotState state = LedgerSlotState::Idle;
    std::optional<ReservationMirror> reservation;
    std::optional<TaskId> task;
  };

  SlotMirror& mirror(SlotId slot);
  void flag(const char* invariant, SimTime now, std::string subject,
            std::string expected, std::string actual);
  /// Monotonic-clock check shared by every event.
  void touch(SimTime now);
  void check_stage_known(TaskId task, SimTime now);

  std::vector<SlotMirror> slots_;
  std::set<StageId> submitted_stages_;
  std::set<StageId> finished_stages_;
  SimTime last_time_ = kTimeZero;
  std::vector<Violation> violations_;
};

}  // namespace ssr::audit
