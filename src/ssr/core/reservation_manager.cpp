#include "ssr/core/reservation_manager.h"

#include <algorithm>
#include <vector>

#include <string>

#include "ssr/analysis/pareto.h"
#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {

ReservationManager::ReservationManager(SsrConfig config) : config_(config) {
  SSR_CHECK_MSG(config_.isolation_p > 0.0 && config_.isolation_p <= 1.0,
                "isolation P must lie in (0, 1]");
  SSR_CHECK_MSG(config_.pareto_alpha > 1.0, "pareto alpha must exceed 1");
  SSR_CHECK_MSG(
      config_.prereserve_threshold >= 0.0 && config_.prereserve_threshold <= 1.0,
      "pre-reservation threshold R must lie in [0, 1]");
  SSR_CHECK_MSG(config_.tail_fraction > 0.0 && config_.tail_fraction < 1.0,
                "Hill tail fraction must lie in (0, 1)");
  SSR_CHECK_MSG(config_.tail_min_samples >= 10,
                "tail learning needs at least 10 samples");
}

bool ReservationManager::eligible(const Engine& engine, JobId job) const {
  return engine.graph(job).priority() >= config_.min_reserving_priority;
}

std::size_t ReservationManager::reserved_count(JobId job) const {
  auto it = by_job_.find(job);
  return it == by_job_.end() ? 0 : it->second.size();
}

// --- Tail-index learning (Sec. III-B, recurring jobs) -------------------------

void ReservationManager::record_duration(const Engine& engine,
                                         const TaskFinishInfo& info) {
  if (!config_.learn_tail_index) return;
  if (info.duration <= 0.0) return;
  auto& samples = durations_by_name_[engine.job_name(info.task.stage.job)];
  // Cap the history: the Hill estimator only needs the recent tail, and the
  // map must not grow without bound across thousands of recurrences.
  constexpr std::size_t kMaxSamples = 20000;
  if (samples.size() < kMaxSamples) samples.push_back(info.duration);
}

std::optional<double> ReservationManager::learned_alpha(
    const std::string& job_name) const {
  if (!config_.learn_tail_index) return std::nullopt;
  auto it = durations_by_name_.find(job_name);
  if (it == durations_by_name_.end() ||
      it->second.size() < config_.tail_min_samples) {
    return std::nullopt;
  }
  const auto k = static_cast<std::size_t>(
      static_cast<double>(it->second.size()) * config_.tail_fraction);
  if (k < 1 || k >= it->second.size()) return std::nullopt;
  return hill_tail_index(it->second, k);
}

double ReservationManager::alpha_for(const Engine& engine, JobId job) const {
  const auto learned = learned_alpha(engine.job_name(job));
  // Guard against degenerate estimates: the deadline formula needs
  // alpha > 1, and near-1 values produce absurd deadlines.
  if (learned && *learned > 1.05) return *learned;
  return config_.pareto_alpha;
}

// --- Deadline policy (Sec. IV-B) --------------------------------------------

std::optional<SimTime> ReservationManager::stage_deadline(Engine& engine,
                                                          StageId stage) {
  StageState& ss = stages_[stage];
  if (!ss.deadline) {
    if (config_.isolation_p >= 1.0) {
      ss.deadline = kTimeInfinity;
    } else {
      const StageRuntime* st = engine.stage_runtime(stage);
      SSR_CHECK_MSG(st != nullptr && st->first_finish_duration().has_value(),
                    "deadline computed before any task finished");
      // t_m is approximated by the duration of the first task to finish in
      // the phase (Sec. IV-B.2); the deadline is anchored at phase start.
      // alpha is the operator's configured estimate, or the per-name Hill
      // estimate for recurring jobs with enough history.
      const ParetoModel model{alpha_for(engine, stage.job),
                              *st->first_finish_duration()};
      const SimDuration d = deadline_for_isolation(model, config_.isolation_p,
                                                   st->parallelism());
      ss.deadline = st->submitted_at() + d;
    }
  }
  if (*ss.deadline != kTimeInfinity && *ss.deadline <= engine.sim().now()) {
    return std::nullopt;  // reservation would expire immediately
  }
  return ss.deadline;
}

// --- Algorithm 1 --------------------------------------------------------------

void ReservationManager::reserve(Engine& engine, SlotId slot,
                                 StageId from_stage, StageId for_stage,
                                 SimTime deadline, bool prereserved) {
  const JobId job = from_stage.job;
  Reservation r;
  r.job = job;
  r.priority = engine.graph(job).priority();
  r.deadline = deadline;
  r.for_stage = for_stage;
  // Record before engine.reserve_slot: the reservation can be overridden by
  // a higher-priority task in the very same call, which lands in
  // on_task_started and must find the record.
  reserved_[slot] = SlotRecord{job, from_stage, for_stage, prereserved};
  by_job_[job].insert(slot);
  engine.reserve_slot(slot, r);
}

void ReservationManager::handle_phase_slot(Engine& engine,
                                           const TaskFinishInfo& info) {
  const StageId sid = info.task.stage;
  const JobId job = sid.job;
  if (!eligible(engine, job)) return;
  // The slot can already be gone: when a straggler race resolves, the killed
  // twin's hook may pre-reserve the winner's (momentarily idle) slot before
  // the winner's own completion hook runs.  Nothing left to reserve then.
  if (engine.cluster().slot(info.slot).state() != SlotState::Idle) return;
  const JobGraph& graph = engine.graph(job);
  if (graph.is_final_stage(sid.index)) {
    return;  // Algorithm 1 line 3: release the slot
  }

  const auto deadline = stage_deadline(engine, sid);
  if (!deadline) return;  // deadline already passed — reserving is pointless

  const std::uint32_t m = info.stage_parallelism;
  std::optional<std::uint32_t> n;
  if (config_.respect_parallelism_hints) {
    n = graph.downstream_parallelism(sid.index);
  }
  const std::uint32_t child_index = *graph.first_child(sid.index);
  const StageId for_stage = graph.stage_id(child_index);

  // Changing resource demands across phases (Sec. III-C): if this slot is
  // too small for a downstream task, release it immediately and pre-reserve
  // right-sized slots instead.  try_prereserve only matches fitting slots.
  const Resources& child_demand = graph.stage(child_index).demand;
  if (!child_demand.fits_in(engine.cluster().slot(info.slot).capacity())) {
    if (config_.enable_prereservation) {
      StageState& ss = stages_[sid];
      if (!ss.prereserving) {
        // The whole downstream phase needs right-sized slots.  A mixed
        // cluster can over-reserve slightly; leftovers are released the
        // moment the downstream is fully placed.
        ss.prereserving = true;
        ss.prereserve_needed = n.value_or(m);
      }
      grab_idle_fitting_slots(engine, sid, for_stage, *deadline);
    }
    return;
  }

  if (!n.has_value() || *n == m) {
    // Case-1 (unknown) or unchanged parallelism: reserve every slot.
    reserve(engine, info.slot, sid, for_stage, *deadline);
    return;
  }
  if (*n < m) {
    // Decreasing parallelism: let go the first m - n slots that become idle
    // (minimizes utilization loss), hold the remainder.
    if (info.stage_finished <= m - *n) return;
    reserve(engine, info.slot, sid, for_stage, *deadline);
    return;
  }

  // Increasing parallelism (m < n): reserve, and once the finished fraction
  // exceeds R, start pre-reserving the extra n - m slots (Case-2.3).
  reserve(engine, info.slot, sid, for_stage, *deadline);
  if (!config_.enable_prereservation) return;
  StageState& ss = stages_[sid];
  const StageRuntime* st = engine.stage_runtime(sid);
  if (!ss.prereserving && st != nullptr &&
      st->finished_fraction() > config_.prereserve_threshold) {
    ss.prereserving = true;
    ss.prereserve_needed = *n - m;
    grab_idle_fitting_slots(engine, sid, for_stage, *deadline);
  }
}

void ReservationManager::grab_idle_fitting_slots(Engine& engine, StageId sid,
                                                 StageId for_stage,
                                                 SimTime deadline) {
  // Grab slots that are idle right now; future releases arrive via
  // on_slot_idle / the post-completion hook.
  StageState& ss = stages_[sid];
  const Resources& demand =
      engine.graph(for_stage.job).stage(for_stage.index).demand;
  const std::vector<SlotId> idle(engine.cluster().idle_slots().begin(),
                                 engine.cluster().idle_slots().end());
  for (SlotId s : idle) {
    if (ss.prereserve_needed == 0) break;
    if (engine.cluster().slot(s).state() != SlotState::Idle) continue;
    if (!demand.fits_in(engine.cluster().slot(s).capacity())) continue;
    --ss.prereserve_needed;
    reserve(engine, s, sid, for_stage, deadline, /*prereserved=*/true);
  }
}

void ReservationManager::on_task_finished(Engine& engine,
                                          const TaskFinishInfo& info) {
  record_duration(engine, info);
  handle_phase_slot(engine, info);
  // If Algorithm 1 released (or skipped) the slot, another job's pending
  // pre-reservation may claim it before it goes back to the general pool.
  if (engine.cluster().slot(info.slot).state() == SlotState::Idle) {
    try_prereserve(engine, info.slot);
  }
  maybe_mitigate(engine, info.task.stage.job);
}

void ReservationManager::on_task_killed(Engine& engine,
                                        const TaskFinishInfo& info) {
  // The twin finished, so the logical task is done and this slot is exactly
  // as warm as a completed-task slot: apply the same reservation rule
  // (cf. Fig. 9 — after the copy of Task-4 completes, both slots carry over).
  handle_phase_slot(engine, info);
  if (engine.cluster().slot(info.slot).state() == SlotState::Idle) {
    try_prereserve(engine, info.slot);
  }
  maybe_mitigate(engine, info.task.stage.job);
}

void ReservationManager::on_slot_idle(Engine& engine, SlotId slot) {
  // A release we did not initiate ourselves means the deadline expired (the
  // engine's expiry timer) — reconcile the record.
  auto it = reserved_.find(slot);
  if (it != reserved_.end()) {
    ++reservations_expired_;
    by_job_[it->second.job].erase(slot);
    reserved_.erase(it);
  }
  try_prereserve(engine, slot);
}

void ReservationManager::on_slot_failed(Engine&, SlotId slot) {
  // The reservation (if any) was broken by the failure, not expired: drop
  // the record without touching the expiry counter.  No pre-reservation
  // either — the slot is Dead.
  auto it = reserved_.find(slot);
  if (it != reserved_.end()) {
    by_job_[it->second.job].erase(slot);
    reserved_.erase(it);
  }
}

bool ReservationManager::approve(const Engine& engine, SlotId slot, JobId job,
                                 int priority) const {
  const Slot& s = engine.cluster().slot(slot);
  switch (s.state()) {
    case SlotState::Idle:
      return true;
    case SlotState::ReservedIdle: {
      // Algorithm 1, TryAllocateTask: skip unless the requester is the
      // reserving job itself or has a strictly higher priority.
      const Reservation& r = *s.reservation();
      return r.job == job || priority > r.priority;
    }
    case SlotState::Busy:
    case SlotState::Dead:
      return false;
  }
  return false;
}

void ReservationManager::on_stage_submitted(Engine&, StageId) {}

void ReservationManager::on_stage_fully_placed(Engine& engine, StageId stage) {
  const JobId job = stage.job;
  const JobGraph& graph = engine.graph(job);

  // Stop pre-reserving on behalf of this stage: every task has a slot.
  for (std::uint32_t parent : graph.stage(stage.index).parents) {
    auto it = stages_.find(graph.stage_id(parent));
    if (it != stages_.end()) {
      it->second.prereserving = false;
      it->second.prereserve_needed = 0;
    }
  }

  // Release reservations that were made for this stage but not consumed
  // (e.g. the downstream phase turned out narrower than speculated).
  auto bj = by_job_.find(job);
  if (bj == by_job_.end()) return;
  std::vector<SlotId> to_release;
  for (SlotId s : bj->second) {
    auto it = reserved_.find(s);
    if (it != reserved_.end() && it->second.for_stage == stage) {
      to_release.push_back(s);
    }
  }
  for (SlotId s : to_release) {
    reserved_.erase(s);
    bj->second.erase(s);
    engine.release_reservation(s);
  }
}

void ReservationManager::on_task_started(Engine& engine, TaskId task,
                                         SlotId slot) {
  // The reservation (if any) was consumed by the reserving job's downstream
  // task or straggler copy — or overridden by a higher-priority job.
  auto it = reserved_.find(slot);
  if (it != reserved_.end()) {
    const SlotRecord rec = it->second;
    by_job_[rec.job].erase(slot);
    reserved_.erase(it);
    if (rec.prereserved && task.stage.job != rec.job) {
      // A higher-priority override took a pre-reserved slot: the extra-slot
      // demand is unmet again, so keep requesting (Algorithm 1, line 17).
      auto ss = stages_.find(rec.from_stage);
      if (ss != stages_.end() && ss->second.prereserving) {
        ++ss->second.prereserve_needed;
      }
    }
  }
  maybe_mitigate(engine, task.stage.job);
}

void ReservationManager::on_job_finished(Engine& engine, JobId job) {
  auto bj = by_job_.find(job);
  if (bj != by_job_.end()) {
    const std::vector<SlotId> slots(bj->second.begin(), bj->second.end());
    for (SlotId s : slots) reserved_.erase(s);
    by_job_.erase(bj);
    for (SlotId s : slots) engine.release_reservation(s);
  }
  std::erase_if(stages_,
                [job](const auto& kv) { return kv.first.job == job; });
}

// --- Pre-reservation (Case-2.3) -----------------------------------------------

bool ReservationManager::try_prereserve(Engine& engine, SlotId slot) {
  if (!config_.enable_prereservation) return false;
  if (engine.cluster().slot(slot).state() != SlotState::Idle) return false;

  // Pick the highest-priority pending demand whose downstream task fits
  // this slot; ties go to the earliest stage.
  StageId best{};
  int best_priority = 0;
  bool found = false;
  for (auto& [sid, ss] : stages_) {
    if (!ss.prereserving || ss.prereserve_needed == 0) continue;
    const JobGraph& g = engine.graph(sid.job);
    const auto child = g.first_child(sid.index);
    if (!child) continue;
    if (!g.stage(*child).demand.fits_in(
            engine.cluster().slot(slot).capacity())) {
      continue;
    }
    const int prio = g.priority();
    if (!found || prio > best_priority) {
      best = sid;
      best_priority = prio;
      found = true;
    }
  }
  if (!found) return false;

  StageState& ss = stages_[best];
  const auto deadline = stage_deadline(engine, best);
  if (!deadline) {
    ss.prereserving = false;
    ss.prereserve_needed = 0;
    return false;
  }
  const JobGraph& graph = engine.graph(best.job);
  const StageId for_stage = graph.stage_id(*graph.first_child(best.index));
  --ss.prereserve_needed;
  reserve(engine, slot, best, for_stage, *deadline, /*prereserved=*/true);
  return true;
}

// --- Straggler mitigation (Sec. IV-C) ------------------------------------------

void ReservationManager::maybe_mitigate(Engine& engine, JobId job) {
  if (!config_.enable_straggler_mitigation) return;
  auto bj = by_job_.find(job);
  if (bj == by_job_.end() || bj->second.empty()) return;

  // Visit the job's phases that currently hold reservations.
  const auto lo = stages_.lower_bound(StageId{job, 0});
  std::vector<StageId> candidate_stages;
  for (auto it = lo; it != stages_.end() && it->first.job == job; ++it) {
    candidate_stages.push_back(it->first);
  }

  for (StageId sid : candidate_stages) {
    StageRuntime* st = engine.stage_runtime(sid);
    if (st == nullptr || st->complete()) continue;

    // Reserved-idle slots this phase contributed.
    std::vector<SlotId> phase_slots;
    for (SlotId s : bj->second) {
      auto rec = reserved_.find(s);
      if (rec != reserved_.end() && rec->second.from_stage == sid) {
        phase_slots.push_back(s);
      }
    }
    const auto ongoing = st->running_task_indices();
    // Trigger: enough reserved slots to give *every* ongoing task a copy.
    if (ongoing.empty() || ongoing.size() > phase_slots.size()) continue;

    std::size_t next_slot = 0;
    for (std::uint32_t task_index : ongoing) {
      if (st->has_live_copy(task_index)) continue;
      while (next_slot < phase_slots.size()) {
        const SlotId s = phase_slots[next_slot++];
        if (engine.cluster().slot(s).state() != SlotState::ReservedIdle) {
          continue;
        }
        if (engine.launch_copy(sid, task_index, s)) {
          ++copies_launched_;
          break;
        }
      }
    }
  }
}

}  // namespace ssr
