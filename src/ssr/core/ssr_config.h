// Tuning knobs of speculative slot reservation.
#pragma once

#include <cstddef>
#include <limits>

namespace ssr {

struct SsrConfig {
  /// Isolation guarantee P in (0, 1] — the probability that a phase keeps
  /// all reserved slots through the barrier (Eq. 2).  P = 1 reserves with no
  /// deadline (strict isolation, maximum utilization loss); smaller values
  /// impose the Eq. (2)-derived deadline D = t_m (1 - P^{1/N})^{-1/alpha}.
  double isolation_p = 1.0;

  /// Operator's estimate of the workload's Pareto tail index, used by the
  /// deadline computation.  Production traces suggest ~1.6 (Sec. IV-C).
  double pareto_alpha = 1.6;

  /// Learn the tail index online from observed task durations, per job name
  /// (Sec. III-B Case-2: recurring jobs — 40% of production workloads — can
  /// have their parameters learned from previous runs).  When enough samples
  /// exist for a job's name, the learned Hill estimate replaces
  /// `pareto_alpha` in the deadline computation.
  bool learn_tail_index = false;

  /// Minimum completed-task samples per job name before the learned tail
  /// index is trusted.
  std::size_t tail_min_samples = 100;

  /// Fraction of the largest samples the Hill estimator uses.
  double tail_fraction = 0.1;

  /// Pre-reservation threshold R (Algorithm 1, Case m < n): once this
  /// fraction of the current phase's tasks has finished, start grabbing the
  /// extra n - m slots released by other jobs.
  double prereserve_threshold = 0.5;

  /// Master switch for pre-reservation (Case-2.3).
  bool enable_prereservation = true;

  /// Turn reserved-but-idle slots into straggler mitigators (Sec. IV-C).
  bool enable_straggler_mitigation = false;

  /// Honor a priori degree-of-parallelism knowledge when the job provides it
  /// (Case-2 of Algorithm 1).  When false every job is treated as Case-1
  /// (assume the downstream phase mirrors the current one).
  bool respect_parallelism_hints = true;

  /// Only jobs with priority >= this value make reservations.  Defaults to
  /// "every job" — the paper's general mechanism; experiments can restrict
  /// reservations to the latency-sensitive foreground class.
  int min_reserving_priority = std::numeric_limits<int>::min();
};

}  // namespace ssr
