#include "ssr/core/naive_policies.h"

#include <vector>

#include "ssr/common/check.h"
#include "ssr/sched/engine.h"

namespace ssr {

// --- StaticReservationHook ----------------------------------------------------

StaticReservationHook::StaticReservationHook(std::uint32_t reserved_slots,
                                             int class_min_priority)
    : target_(reserved_slots), class_min_priority_(class_min_priority) {}

void StaticReservationHook::replenish(Engine& engine) {
  if (class_slots_.size() >= target_) return;
  // Copy: reserving mutates the idle set.
  const std::vector<SlotId> idle(engine.cluster().idle_slots().begin(),
                                 engine.cluster().idle_slots().end());
  for (SlotId s : idle) {
    if (class_slots_.size() >= target_) break;
    if (engine.cluster().slot(s).state() != SlotState::Idle) continue;
    Reservation r;
    r.job = kClassJob;
    // Any job of the class (priority >= class_min_priority) passes the
    // "strictly higher priority" approval test against this value.
    r.priority = class_min_priority_ - 1;
    r.deadline = kTimeInfinity;
    class_slots_.insert(s);
    engine.reserve_slot(s, r);
  }
}

void StaticReservationHook::on_task_finished(Engine& engine,
                                             const TaskFinishInfo&) {
  replenish(engine);
}

void StaticReservationHook::on_task_killed(Engine& engine,
                                           const TaskFinishInfo&) {
  replenish(engine);
}

void StaticReservationHook::on_slot_idle(Engine& engine, SlotId) {
  replenish(engine);
}

void StaticReservationHook::on_stage_submitted(Engine& engine, StageId) {
  // First chance to establish the carve-out once work exists.
  replenish(engine);
}

void StaticReservationHook::on_slot_failed(Engine& engine, SlotId slot) {
  // A carve-out slot died; re-establish the target from surviving capacity.
  if (class_slots_.erase(slot) > 0) replenish(engine);
}

bool StaticReservationHook::approve(const Engine& engine, SlotId slot,
                                    JobId job, int priority) const {
  const Slot& s = engine.cluster().slot(slot);
  switch (s.state()) {
    case SlotState::Idle:
      return true;
    case SlotState::ReservedIdle: {
      const Reservation& r = *s.reservation();
      return r.job == job || priority > r.priority;
    }
    case SlotState::Busy:
    case SlotState::Dead:
      return false;
  }
  return false;
}

void StaticReservationHook::on_task_started(Engine& engine, TaskId,
                                            SlotId slot) {
  // A class job consumed one of the carve-out slots; top it back up.
  if (class_slots_.erase(slot) > 0) replenish(engine);
}

// --- TimeoutReservationHook ---------------------------------------------------

TimeoutReservationHook::TimeoutReservationHook(SimDuration timeout)
    : timeout_(timeout) {
  SSR_CHECK_MSG(timeout > 0.0, "timeout must be positive");
}

void TimeoutReservationHook::on_task_finished(Engine& engine,
                                              const TaskFinishInfo& info) {
  if (engine.cluster().slot(info.slot).state() != SlotState::Idle) return;
  const JobId job = info.task.stage.job;
  Reservation r;
  r.job = job;
  r.priority = engine.graph(job).priority();
  r.deadline = engine.sim().now() + timeout_;
  held_[info.slot] = job;
  by_job_[job].insert(info.slot);
  engine.reserve_slot(info.slot, r);
}

void TimeoutReservationHook::on_task_killed(Engine& engine,
                                            const TaskFinishInfo& info) {
  on_task_finished(engine, info);
}

void TimeoutReservationHook::on_slot_idle(Engine&, SlotId slot) {
  // Reached when a hold expires: reconcile the bookkeeping.
  auto it = held_.find(slot);
  if (it != held_.end()) {
    by_job_[it->second].erase(slot);
    held_.erase(it);
  }
}

void TimeoutReservationHook::on_slot_failed(Engine&, SlotId slot) {
  auto it = held_.find(slot);
  if (it != held_.end()) {
    by_job_[it->second].erase(slot);
    held_.erase(it);
  }
}

bool TimeoutReservationHook::approve(const Engine& engine, SlotId slot,
                                     JobId job, int priority) const {
  const Slot& s = engine.cluster().slot(slot);
  switch (s.state()) {
    case SlotState::Idle:
      return true;
    case SlotState::ReservedIdle: {
      const Reservation& r = *s.reservation();
      return r.job == job || priority > r.priority;
    }
    case SlotState::Busy:
    case SlotState::Dead:
      return false;
  }
  return false;
}

void TimeoutReservationHook::on_task_started(Engine&, TaskId, SlotId slot) {
  auto it = held_.find(slot);
  if (it != held_.end()) {
    by_job_[it->second].erase(slot);
    held_.erase(it);
  }
}

void TimeoutReservationHook::on_job_finished(Engine& engine, JobId job) {
  auto it = by_job_.find(job);
  if (it == by_job_.end()) return;
  const std::vector<SlotId> slots(it->second.begin(), it->second.end());
  for (SlotId s : slots) held_.erase(s);
  by_job_.erase(it);
  for (SlotId s : slots) {
    if (engine.cluster().slot(s).state() == SlotState::ReservedIdle &&
        engine.cluster().slot(s).reservation()->job == job) {
      engine.release_reservation(s);
    }
  }
}

}  // namespace ssr
