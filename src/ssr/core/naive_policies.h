// The two naive reservation strategies the paper contrasts against
// (Sec. III-A): static slot reservation and timeout-based reservation.
// Both are real policies in production systems (Mesos/Borg static
// reservations; Spark dynamic-allocation executor timeouts), and both are
// implemented here as ReservationHooks so the ablation benches can compare
// them with speculative slot reservation under identical workloads.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/sched/types.h"

namespace ssr {

/// Sec. III-A.1 — static slot reservation: the operator carves out a fixed
/// number of slots for the latency-sensitive class (jobs with priority >=
/// class_min_priority).  The carve-out ignores the actual demand: too few
/// slots compromise isolation, too many waste utilization.
class StaticReservationHook : public ReservationHook {
 public:
  StaticReservationHook(std::uint32_t reserved_slots, int class_min_priority);

  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override;
  void on_task_killed(Engine& engine, const TaskFinishInfo& info) override;
  void on_slot_idle(Engine& engine, SlotId slot) override;
  void on_slot_failed(Engine& engine, SlotId slot) override;
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override;
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::PriorityOverride;
  }
  void on_stage_submitted(Engine& engine, StageId stage) override;
  void on_stage_fully_placed(Engine&, StageId) override {}
  void on_task_started(Engine& engine, TaskId task, SlotId slot) override;
  void on_job_finished(Engine&, JobId) override {}

  /// Slots currently held idle for the class.
  std::size_t held_slots() const { return class_slots_.size(); }

  /// Sentinel job id used for the class reservations (no real job owns
  /// them; approval works through the reservation priority instead).
  static constexpr JobId kClassJob{0xFFFFFFFFu};

 private:
  /// Top up the carve-out to `target_` from the idle pool.
  void replenish(Engine& engine);

  std::uint32_t target_;
  int class_min_priority_;
  std::set<SlotId> class_slots_;  ///< currently ReservedIdle for the class
};

/// Sec. III-A.2 — timeout-based reservation (Spark dynamic allocation): when
/// a task finishes, its slot is blindly held for the job for a fixed
/// timeout, whether or not a downstream computation exists.
class TimeoutReservationHook : public ReservationHook {
 public:
  explicit TimeoutReservationHook(SimDuration timeout);

  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override;
  void on_task_killed(Engine& engine, const TaskFinishInfo& info) override;
  void on_slot_idle(Engine& engine, SlotId slot) override;
  void on_slot_failed(Engine& engine, SlotId slot) override;
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override;
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::PriorityOverride;
  }
  void on_stage_submitted(Engine&, StageId) override {}
  void on_stage_fully_placed(Engine&, StageId) override {}
  void on_task_started(Engine&, TaskId, SlotId slot) override;
  void on_job_finished(Engine& engine, JobId job) override;

 private:
  SimDuration timeout_;
  std::map<SlotId, JobId> held_;  ///< our own view of live holds
  std::map<JobId, std::set<SlotId>> by_job_;
};

}  // namespace ssr
