// Speculative slot reservation — the paper's core contribution.
//
// ReservationManager implements the scheduler-side logic of Algorithm 1 plus
// the two utilization-loss mitigations of Sec. IV:
//
//  * HandleTaskCompletion: when a task of a non-final phase finishes, reserve
//    its slot for the downstream phase.  With a priori parallelism knowledge
//    (m current, n downstream): reserve all slots when n is unknown or
//    n == m; release the first m - n freed slots when n < m; reserve and
//    additionally pre-reserve n - m foreign slots once the finished fraction
//    exceeds the threshold R when n > m.
//  * Reservation deadline (Sec. IV-B): each phase's reservations expire at
//    phase_start + t_m * (1 - P^{1/N})^{-1/alpha}, with t_m estimated online
//    as the duration of the phase's first finishing task.  P = 1 never
//    expires.
//  * Straggler mitigation (Sec. IV-C): once the number of ongoing tasks in a
//    phase drops to the number of the job's reserved-idle slots, launch one
//    extra copy of every ongoing task on a reserved slot; the first finisher
//    wins and the loser is killed (the engine implements the race).
//
// TryAllocateTask's ApprovalLogic lives in approve(): a reserved slot may
// only be taken by the reserving job itself or by a strictly higher-priority
// job.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ssr/common/ids.h"
#include "ssr/common/time.h"
#include "ssr/core/ssr_config.h"
#include "ssr/sched/types.h"

namespace ssr {

class ReservationManager : public ReservationHook {
 public:
  explicit ReservationManager(SsrConfig config);

  // --- ReservationHook ------------------------------------------------------
  void on_task_finished(Engine& engine, const TaskFinishInfo& info) override;
  void on_task_killed(Engine& engine, const TaskFinishInfo& info) override;
  void on_slot_idle(Engine& engine, SlotId slot) override;
  void on_slot_failed(Engine& engine, SlotId slot) override;
  bool approve(const Engine& engine, SlotId slot, JobId job,
               int priority) const override;
  ReservedApprovalModel reserved_approval_model() const override {
    return ReservedApprovalModel::PriorityOverride;
  }
  void on_stage_submitted(Engine& engine, StageId stage) override;
  void on_stage_fully_placed(Engine& engine, StageId stage) override;
  void on_task_started(Engine& engine, TaskId task, SlotId slot) override;
  void on_job_finished(Engine& engine, JobId job) override;

  // --- Introspection (tests, metrics) ---------------------------------------
  const SsrConfig& config() const { return config_; }

  /// Number of slots currently reserved (idle) on behalf of `job`.
  std::size_t reserved_count(JobId job) const;

  /// Total straggler copies this manager has launched.
  std::uint64_t copies_launched() const { return copies_launched_; }

  /// Total reservations that expired at their deadline.
  std::uint64_t reservations_expired() const { return reservations_expired_; }

  /// Learned Pareto tail index for a recurring job name (Hill estimator);
  /// nullopt until `tail_min_samples` completions have been observed or when
  /// learning is disabled.
  std::optional<double> learned_alpha(const std::string& job_name) const;

 private:
  /// Per-(upstream) stage reservation state.
  struct StageState {
    /// Absolute reservation deadline for slots reserved by this phase;
    /// computed from the first task completion.  kTimeInfinity if P = 1.
    std::optional<SimTime> deadline;
    /// Pre-reservation (Case m < n): downstream stage index and how many
    /// extra slots still need to be grabbed.
    bool prereserving = false;
    std::uint32_t prereserve_needed = 0;
  };

  /// The manager's own view of reservations it made (the cluster is
  /// authoritative for state; this map adds which upstream stage the
  /// reservation came from, for release-on-fully-placed and mitigation).
  struct SlotRecord {
    JobId job;
    StageId from_stage;  ///< Upstream stage whose completion reserved it.
    StageId for_stage;   ///< Downstream stage it serves.
    bool prereserved = false;  ///< Came from Case-2.3 pre-reservation.
  };

  bool eligible(const Engine& engine, JobId job) const;

  /// Compute (and cache) the stage's reservation deadline; returns nullopt
  /// if the deadline already passed (reservations would be dead on arrival).
  std::optional<SimTime> stage_deadline(Engine& engine, StageId stage);

  /// Algorithm 1's "reserve s and s.priority <- k.job.priority".
  void reserve(Engine& engine, SlotId slot, StageId from_stage,
               StageId for_stage, SimTime deadline, bool prereserved = false);

  /// Algorithm 1 HandleTaskCompletion for a slot freed by `info`'s task
  /// (shared by finish and kill paths).
  void handle_phase_slot(Engine& engine, const TaskFinishInfo& info);

  /// Offer an idle slot to pending pre-reservations (highest priority
  /// first).  Returns true if the slot was grabbed.
  bool try_prereserve(Engine& engine, SlotId slot);

  /// Grab currently-idle slots that fit for_stage's demand, up to the
  /// stage's outstanding pre-reservation count.
  void grab_idle_fitting_slots(Engine& engine, StageId sid, StageId for_stage,
                               SimTime deadline);

  /// Launch straggler copies for every stage of `job` whose trigger fires.
  void maybe_mitigate(Engine& engine, JobId job);

  /// Record a completed task's duration for per-name tail learning.
  void record_duration(const Engine& engine, const TaskFinishInfo& info);

  /// Tail index the deadline computation should use for `job`: the learned
  /// per-name estimate when available, the configured alpha otherwise.
  double alpha_for(const Engine& engine, JobId job) const;

  SsrConfig config_;
  std::map<StageId, StageState> stages_;
  std::map<SlotId, SlotRecord> reserved_;
  std::map<JobId, std::set<SlotId>> by_job_;
  std::map<std::string, std::vector<double>> durations_by_name_;
  std::uint64_t copies_launched_ = 0;
  std::uint64_t reservations_expired_ = 0;
};

}  // namespace ssr
